//! The Linux Skype workload.
//!
//! Skype 1.4.0.99 making a call (§3.5). The traces show "a number of
//! short, irregular timeouts using poll and select … dominated by
//! constant timeouts of 0, 0.4999 and 0.5" (§4.2, Figure 6), plus the
//! adaptive TCP socket timers that form "the large cluster of points
//! below 1 second … characteristic of adaptive timers" (§4.3).

use netsim::{Link, NetFault};
use simtime::{Empirical, Sample, SimDuration, SimRng};
use trace::TraceSink;

use super::{finish, looper_expired, looper_start, schedule_lan, HasLoopers, SelectLooper};
use crate::driver::{LinuxDriver, LinuxWorld};
use crate::pids;
use linuxsim::{ConnId, LinuxConfig, LinuxKernel, Notify, UserKind};

/// Skype state.
pub struct SkypeWorld {
    loopers: Vec<SelectLooper>,
    /// The poll value mix: 0, 0.4999, 0.5 constants plus irregular short
    /// values (0.044–0.1 s).
    poll_values: Empirical,
    /// The call's control connection.
    conn: Option<ConnId>,
    /// The Internet path of the call (can carry a degradation episode).
    link: Link,
}

impl HasLoopers for SkypeWorld {
    fn loopers(&mut self) -> &mut Vec<SelectLooper> {
        &mut self.loopers
    }
}

impl LinuxWorld for SkypeWorld {
    fn on_notify(driver: &mut LinuxDriver<Self>, notify: Notify) {
        match notify {
            Notify::UserTimerExpired { kind, pid, tid, .. } => match kind {
                // The main loop (select on tid 1) restarts on expiry; the
                // audio engine's zero polls are fire-and-forget (the next
                // frame issues fresh ones).
                UserKind::Select if pid == pids::SKYPE => main_poll_cycle(driver, tid),
                UserKind::Poll if pid == pids::SKYPE => {}
                UserKind::Select => looper_expired(driver, pid, tid),
                _ => {}
            },
            Notify::TcpRetransmit { conn } => {
                // The retransmitted segment's ACK comes back a link RTT
                // later (if not lost again).
                let link = driver.world.link.clone();
                if let Some(rtt) = link.send_segment_at(driver.now(), &mut driver.rng) {
                    driver.after(rtt, move |d| {
                        // Karn's rule: no sample for retransmits.
                        d.kernel.tcp_ack_received(conn, None);
                    });
                }
            }
            _ => {}
        }
    }
}

/// The audio engine: every 20 ms frame it does non-blocking (zero
/// timeout) polls of its sockets.
fn audio_frame(driver: &mut LinuxDriver<SkypeWorld>) {
    // A non-blocking (zero timeout) poll every few frames.
    if driver.rng.chance(0.35) {
        driver
            .kernel
            .sys_poll(pids::SKYPE, 2, "skype:poll_audio", SimDuration::ZERO);
    }
    // Voice data rides the connection periodically.
    if driver.rng.chance(0.12) {
        if let Some(conn) = driver.world.conn {
            driver.kernel.tcp_transmit(conn);
            let link = driver.world.link.clone();
            if let Some(rtt) = link.send_segment_at(driver.now(), &mut driver.rng) {
                driver.after(rtt, move |d| {
                    d.kernel.tcp_ack_received(conn, Some(rtt));
                });
            }
        }
    }
    driver.after(SimDuration::from_millis(20), audio_frame);
}

/// The main event loop: 0.5 s-class waits, mostly cut short by traffic.
fn main_poll_cycle(driver: &mut LinuxDriver<SkypeWorld>, tid: u32) {
    let value = driver.world.poll_values.sample(&mut driver.rng);
    let timeout = SimDuration::from_secs_f64(value);
    let handle = driver
        .kernel
        .sys_select(pids::SKYPE, tid, "skype:select_main", timeout, false);
    if !timeout.is_zero() && driver.rng.chance(0.74) {
        let frac = driver.rng.unit_f64();
        let delay = timeout.mul_f64(frac).max(SimDuration::from_micros(50));
        driver.after(delay, move |d| {
            if d.kernel.timer_base().is_pending(handle) {
                d.kernel.sys_select_return(handle);
                main_poll_cycle(d, tid);
            }
        });
    }
}

/// Inbound voice/control data arrives continuously.
fn schedule_inbound(driver: &mut LinuxDriver<SkypeWorld>) {
    let gap = simtime::Exp::new(0.35).sample_duration(&mut driver.rng);
    driver.after(gap.max(SimDuration::from_millis(1)), |d| {
        if let Some(conn) = d.world.conn {
            d.kernel.tcp_data_received(conn);
            // Roughly half the time Skype replies promptly, piggybacking
            // the ACK (cancelling the delayed-ACK timer); otherwise the
            // 40 ms delack expires.
            if d.rng.chance(0.55) {
                let reply_delay = SimDuration::from_millis(2 + d.rng.range_u64(0, 15));
                d.after(reply_delay, move |d| {
                    d.kernel.tcp_transmit(conn);
                    let link = d.world.link.clone();
                    if let Some(rtt) = link.send_segment_at(d.now(), &mut d.rng) {
                        d.after(rtt, move |d| {
                            d.kernel.tcp_ack_received(conn, Some(rtt));
                        });
                    }
                });
            }
        }
        schedule_inbound(d);
    });
}

/// Runs the Skype workload; `net` attaches a degradation episode to the
/// call's Internet path ([`NetFault::none`] for the paper's conditions).
pub fn run(
    seed: u64,
    duration: SimDuration,
    sink: Box<dyn TraceSink>,
    net: NetFault,
    backend: wheel::Backend,
    policy: adaptive::AdaptivePolicy,
) -> LinuxKernel {
    let cfg = LinuxConfig {
        seed,
        backend,
        policy,
        ..LinuxConfig::default()
    };
    let mut kernel = LinuxKernel::new(cfg, sink);
    kernel.register_process(pids::XORG, "Xorg");
    kernel.register_process(pids::ICEWM, "icewm");
    kernel.register_process(pids::SKYPE, "skype");
    let poll_values = Empirical::new(&[
        (0.0, 18.0),
        (0.4999, 7.0),
        (0.5, 11.0),
        (0.044, 13.0),
        (0.048, 11.0),
        (0.052, 13.0),
        (0.1, 11.0),
        (0.024, 8.0),
        (0.092, 5.0),
        (0.2, 3.0),
    ]);
    let world = SkypeWorld {
        loopers: vec![
            SelectLooper::new(
                pids::XORG,
                pids::XORG,
                "Xorg:select",
                SimDuration::from_secs(600),
                SimDuration::from_millis(80),
            ),
            SelectLooper::new(
                pids::ICEWM,
                pids::ICEWM,
                "icewm:select",
                SimDuration::from_secs(300),
                SimDuration::from_millis(200),
            ),
        ],
        poll_values,
        conn: None,
        link: Link::internet_lossy().with_fault(net),
    };
    let rng = SimRng::new(seed ^ 0x5c1e);
    let mut driver = LinuxDriver::new(kernel, rng, world);
    // Establish the call's connection (with keepalive, like a long-lived
    // control channel — the 7200 s timer in Figure 3).
    let conn = driver.kernel.tcp_open(true);
    let link = driver.world.link.clone();
    let rtt = link.sample_rtt_at(driver.now(), &mut driver.rng);
    driver.after(rtt, move |d| {
        d.kernel.tcp_established(conn);
        d.world.conn = Some(conn);
        schedule_inbound(d);
    });
    for idx in 0..driver.world.loopers.len() {
        looper_start(&mut driver, idx);
    }
    driver.after(SimDuration::from_millis(5), audio_frame);
    // Several event-loop threads share the short-select pattern.
    for tid in [1u32, 3, 4, 5, 6] {
        let phase = SimDuration::from_millis(7 + 3 * tid as u64);
        driver.after(phase, move |d| main_poll_cycle(d, tid));
    }
    schedule_lan(&mut driver, netsim::LanActivity::departmental());
    finish(driver, duration)
}
