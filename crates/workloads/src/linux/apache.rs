//! The scaled Apache workload: ~10⁶ concurrent keep-alive connections.
//!
//! The paper's httperf run holds ~10 connections in flight; this model
//! scales the same per-connection timer pattern — a 15 s application
//! watchdog endlessly re-set by activity, plus one kernel retransmit
//! timer — to a million concurrent connections, the load a modern
//! front-end webserver actually carries. It exists to exercise the
//! sharded per-CPU timer bases (`wheel::sharded`): every connection is
//! pinned to a deterministic simulated CPU, activity waves rotate that
//! CPU, and each rotated re-arm migrates the live watchdog between bases
//! exactly as `__mod_timer` re-homes timers onto the arming CPU's
//! `tvec_base`.
//!
//! Everything is deterministic: connection placement, wave membership,
//! and loss selection come from hashes of the connection key, never the
//! RNG, so runs are byte-identical across shard counts.

use netsim::{ClientPool, NetFault};
use simtime::{SimDuration, SimInstant, SimRng};
use trace::TraceSink;

use super::{finish, schedule_lan};
use crate::driver::{LinuxDriver, LinuxWorld};
use crate::pids;
use linuxsim::{LinuxConfig, LinuxKernel, MassId, Notify};

/// Connections opened per second of run length (500 s reaches the full
/// million).
pub const CONNS_PER_SECOND: u64 = 2_000;
/// Ceiling: the titular million connections.
pub const MAX_CONNS: u64 = 1_000_000;
/// Floor for very short runs.
pub const MIN_CONNS: u64 = 1_000;
/// Gap between activity waves; must stay under the 15 s watchdog.
const WAVE_GAP: SimDuration = SimDuration::from_secs(10);
/// Ramp batches (connections open over the first 40 % of the run).
const RAMP_BATCHES: u64 = 50;

/// The connection count a run of `duration` builds up to.
pub fn connection_target(duration: SimDuration) -> u64 {
    ((duration.as_secs_f64() * CONNS_PER_SECOND as f64) as u64).clamp(MIN_CONNS, MAX_CONNS)
}

/// Workload state: the open connection set and its address pool.
pub struct MassWorld {
    /// Every opened connection with its collision-free address key.
    conns: Vec<(MassId, u64)>,
    pool: ClientPool,
    target: u64,
    /// Simulated CPU count (the sharded backend's base count).
    shards: u32,
    /// Activity-wave sequence number.
    wave: u64,
}

impl LinuxWorld for MassWorld {
    fn on_notify(_driver: &mut LinuxDriver<Self>, _notify: Notify) {
        // The mass table needs no driver-side reaction: watchdog and
        // retransmit expiries are handled inside the kernel model.
    }
}

/// splitmix64: deterministic placement/selection hash (no RNG draws).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The simulated CPU serving connection `key` during `wave`.
fn cpu_of(key: u64, wave: u64, shards: u32) -> u32 {
    (mix(key ^ wave.wrapping_mul(0x517c_c1b7_2722_0a95)) % shards as u64) as u32
}

/// Opens one ramp batch of connections.
fn open_batch(driver: &mut LinuxDriver<MassWorld>, count: u64) {
    for _ in 0..count {
        if driver.world.conns.len() as u64 >= driver.world.target {
            return;
        }
        let key = driver.world.pool.allocate().key();
        let cpu = cpu_of(key, 0, driver.world.shards);
        let id = driver.kernel.mass_open(pids::APACHE, cpu);
        driver.world.conns.push((id, key));
    }
}

/// One activity wave: every open connection refreshes its watchdog from
/// its (rotated) serving CPU — migrating it between bases — and either
/// goes idle acknowledged or, for a rotating ~1 % subset, retransmits
/// into loss so its RTO genuinely fires.
fn run_wave(driver: &mut LinuxDriver<MassWorld>) {
    driver.world.wave += 1;
    let wave = driver.world.wave;
    let shards = driver.world.shards;
    let conns = std::mem::take(&mut driver.world.conns);
    for (idx, &(id, key)) in conns.iter().enumerate() {
        let cpu = cpu_of(key, wave, shards);
        driver.kernel.mass_activity(id, cpu);
        if (idx as u64).wrapping_add(wave).is_multiple_of(101) {
            driver.kernel.mass_transmit(id, cpu);
        } else {
            driver.kernel.mass_ack(id, cpu);
        }
    }
    driver.world.conns = conns;
}

/// Schedules the recurring activity waves until `close_at`.
fn schedule_waves(driver: &mut LinuxDriver<MassWorld>, close_at: SimInstant) {
    driver.after(WAVE_GAP, move |d| {
        // A due wave always runs (skipping it would open a gap longer
        // than the 15 s watchdog); only waves landing at or past the
        // close are dropped.
        if d.now() >= close_at {
            return;
        }
        run_wave(d);
        schedule_waves(d, close_at);
    });
}

/// Closes every open connection (the end-of-run drain: zero leaked
/// timers is part of the acceptance for this workload).
fn close_all(driver: &mut LinuxDriver<MassWorld>) {
    let conns = std::mem::take(&mut driver.world.conns);
    for &(id, _) in &conns {
        driver.kernel.mass_close(id);
    }
    driver.world.conns = conns;
}

/// Runs the scaled Apache workload; `net` attaches a degradation episode
/// to the background LAN (the mass table itself models loss
/// deterministically).
pub fn run(
    seed: u64,
    duration: SimDuration,
    sink: Box<dyn TraceSink>,
    net: NetFault,
    backend: wheel::Backend,
    policy: adaptive::AdaptivePolicy,
) -> LinuxKernel {
    let cfg = LinuxConfig {
        seed,
        backend,
        policy,
        ..LinuxConfig::default()
    };
    let shards = cfg.shards() as u32;
    let mut kernel = LinuxKernel::new(cfg, sink);
    kernel.register_process(pids::APACHE, "apache2");
    let target = connection_target(duration);
    let world = MassWorld {
        conns: Vec::with_capacity(target as usize),
        pool: ClientPool::sized_for(target),
        target,
        shards: shards.max(1),
        wave: 0,
    };
    let rng = SimRng::new(seed ^ 0xa9ac);
    let mut driver = LinuxDriver::new(kernel, rng, world);

    // Ramp: open the population in batches across the first 40 % of the
    // run, then hold it steady with activity waves, then drain.
    let ramp_span = duration * 2 / 5;
    let batch_gap = ramp_span / RAMP_BATCHES;
    let per_batch = target.div_ceil(RAMP_BATCHES);
    for b in 0..RAMP_BATCHES {
        let delay = SimDuration::from_nanos(batch_gap.as_nanos() * b + 1);
        driver.after(delay, move |d| open_batch(d, per_batch));
    }
    let close_margin = SimDuration::from_secs(2).min(duration / 4);
    let close_at = SimInstant::BOOT + (duration - close_margin);
    schedule_waves(&mut driver, close_at);
    driver.after(duration - close_margin, close_all);
    schedule_lan(&mut driver, netsim::LanActivity::departmental());
    let _ = net; // Background LAN only; mass loss is deterministic.
    finish(driver, duration)
}
