//! Linux workload models.

pub mod apache;
pub mod firefox;
pub mod idle;
pub mod skype;
pub mod webserver;

use simtime::{Sample, SimDuration, SimInstant};
use trace::{Pid, Tid};

use crate::driver::{LinuxDriver, LinuxWorld};
use linuxsim::TimerHandle;

/// A `select`-loop participant with the countdown idiom: a long constant
/// timeout, re-issued with the *remaining* value on every fd activity
/// (the X/icewm behaviour behind Figure 4).
#[derive(Debug, Clone)]
pub struct SelectLooper {
    /// Owning process.
    pub pid: Pid,
    /// Owning thread.
    pub tid: Tid,
    /// Provenance label.
    pub origin: &'static str,
    /// The constant full timeout the loop starts from.
    pub full: SimDuration,
    /// Mean gap between fd-activity events.
    pub activity_mean: SimDuration,
    /// The currently armed select timer.
    pub handle: Option<TimerHandle>,
}

impl SelectLooper {
    /// Creates a looper (not yet started).
    pub fn new(
        pid: Pid,
        tid: Tid,
        origin: &'static str,
        full: SimDuration,
        activity_mean: SimDuration,
    ) -> Self {
        SelectLooper {
            pid,
            tid,
            origin,
            full,
            activity_mean,
            handle: None,
        }
    }
}

/// Operations a world must expose for the shared select-loop helpers.
pub trait HasLoopers: LinuxWorld {
    /// The select-loop participants.
    fn loopers(&mut self) -> &mut Vec<SelectLooper>;
}

/// Starts looper `idx`: issues the full select and schedules activity.
pub fn looper_start<W: HasLoopers + 'static>(driver: &mut LinuxDriver<W>, idx: usize) {
    let (pid, tid, origin, full) = {
        let l = &driver.world.loopers()[idx];
        (l.pid, l.tid, l.origin, l.full)
    };
    let handle = driver.kernel.sys_select(pid, tid, origin, full, false);
    driver.world.loopers()[idx].handle = Some(handle);
    looper_schedule_activity(driver, idx);
}

/// Schedules the next fd-activity event for looper `idx`.
pub fn looper_schedule_activity<W: HasLoopers + 'static>(driver: &mut LinuxDriver<W>, idx: usize) {
    let mean = driver.world.loopers()[idx].activity_mean;
    let gap = simtime::Exp::new(mean.as_secs_f64()).sample_duration(&mut driver.rng);
    driver.after(gap.max(SimDuration::from_micros(100)), move |d| {
        looper_activity(d, idx);
    });
}

/// An fd became ready: select returns early; re-issue the remaining time
/// (the countdown), or the full value if the countdown ran out.
fn looper_activity<W: HasLoopers + 'static>(driver: &mut LinuxDriver<W>, idx: usize) {
    let (pid, tid, origin, full, handle) = {
        let l = &driver.world.loopers()[idx];
        (l.pid, l.tid, l.origin, l.full, l.handle)
    };
    if let Some(h) = handle {
        if driver.kernel.timer_base().is_pending(h) {
            let remaining = driver.kernel.sys_select_return(h);
            let (value, countdown) = if remaining > SimDuration::from_millis(4) {
                (remaining, true)
            } else {
                (full, false)
            };
            let new_handle = driver.kernel.sys_select(pid, tid, origin, value, countdown);
            driver.world.loopers()[idx].handle = Some(new_handle);
        }
    }
    looper_schedule_activity(driver, idx);
}

/// The select loop's timer expired (countdown reached zero): restart with
/// the full value.
pub fn looper_expired<W: HasLoopers + 'static>(driver: &mut LinuxDriver<W>, pid: Pid, tid: Tid) {
    let idx = {
        let loopers = driver.world.loopers();
        loopers.iter().position(|l| l.pid == pid && l.tid == tid)
    };
    if let Some(idx) = idx {
        let (lpid, ltid, origin, full) = {
            let l = &driver.world.loopers()[idx];
            (l.pid, l.tid, l.origin, l.full)
        };
        let handle = driver.kernel.sys_select(lpid, ltid, origin, full, false);
        driver.world.loopers()[idx].handle = Some(handle);
    }
}

/// A daemon that blocks in `select`/`poll` with a round-number timeout
/// that usually expires (cron waking each minute, etc.).
#[derive(Debug, Clone)]
pub struct DaemonPoller {
    /// Owning process.
    pub pid: Pid,
    /// Provenance label.
    pub origin: &'static str,
    /// The round timeout.
    pub timeout: SimDuration,
    /// Probability that a cycle is cut short by real work instead of
    /// expiring.
    pub activity_chance: f64,
}

/// Issues one daemon poll cycle and schedules its early-cancel, if drawn.
pub fn daemon_poll<W: LinuxWorld + 'static>(driver: &mut LinuxDriver<W>, poller: DaemonPoller) {
    let handle =
        driver
            .kernel
            .sys_select(poller.pid, poller.pid, poller.origin, poller.timeout, false);
    if driver.rng.chance(poller.activity_chance) {
        // Work arrives part-way through: cancel and immediately re-issue.
        let frac = 0.05 + 0.9 * driver.rng.unit_f64();
        let delay = poller.timeout.mul_f64(frac);
        driver.after(delay, move |d| {
            if d.kernel.timer_base().is_pending(handle) {
                d.kernel.sys_select_return(handle);
                daemon_poll(d, poller);
            }
        });
    }
    // Expiry restarts are handled by the world's notification dispatch.
}

/// Ambient LAN traffic: schedules the next ARP-relevant packet.
pub fn schedule_lan<W: LinuxWorld + 'static>(
    driver: &mut LinuxDriver<W>,
    lan: netsim::LanActivity,
) {
    let gap = lan.next_gap(&mut driver.rng);
    driver.after(gap, move |d| {
        let host = d.rng.range_u64(0, 6) as u32;
        d.kernel.arp_lan_packet(host);
        schedule_lan(d, lan);
    });
}

/// Runs `driver` for `duration` and returns the finished kernel.
pub fn finish<W: LinuxWorld>(
    mut driver: LinuxDriver<W>,
    duration: SimDuration,
) -> linuxsim::LinuxKernel {
    driver.run_until(SimInstant::BOOT + duration);
    driver.kernel
}
