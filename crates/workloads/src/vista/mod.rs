//! Vista workload models.

pub mod firefox;
pub mod idle;
pub mod outlook;
pub mod skype;
pub mod webserver;

use simtime::{SimDuration, SimInstant};
use trace::Pid;

use crate::driver::{VistaDriver, VistaWorld};

/// Boots the idle desktop's background service population: the 26
/// background processes of §3.5's Vista idle workload.
///
/// Each service runs one of the user-level idioms: periodic threadpool
/// timers, `Sleep` loops, message-loop `SetTimer`s, or timed waits that
/// are usually satisfied.
pub fn boot_services<W: VistaWorld + 'static>(driver: &mut VistaDriver<W>) {
    use crate::pids;
    driver.kernel.register_process(pids::CSRSS, "csrss.exe");
    driver
        .kernel
        .register_process(pids::AUDIO_TRAY, "systray_audio.exe");
    for i in 0..8 {
        driver
            .kernel
            .register_process(pids::SVCHOST_BASE + i, "svchost.exe");
    }
    // The rest of the 26-process background population, each owning a
    // few timers of its own (Table 2 counts 135-228 distinct KTIMERs on
    // an idle desktop).
    let extras: [(u32, &str); 10] = [
        (170, "wininit.exe"),
        (171, "lsass.exe"),
        (172, "services.exe"),
        (173, "dwm.exe"),
        (174, "explorer.exe"),
        (175, "taskeng.exe"),
        (176, "spoolsv.exe"),
        (177, "SearchIndexer.exe"),
        (178, "audiodg.exe"),
        (179, "sidebar.exe"),
    ];
    for (pid, name) in extras {
        driver.kernel.register_process(pid, name);
    }
    // dwm and sidebar run GUI timers; explorer keeps several.
    driver
        .kernel
        .win32_set_timer(173, 1, "dwm.exe:SetTimer", SimDuration::from_millis(1_000));
    driver.kernel.win32_set_timer(
        174,
        1,
        "explorer.exe:SetTimer",
        SimDuration::from_millis(500),
    );
    driver
        .kernel
        .win32_set_timer(174, 2, "explorer.exe:SetTimer", SimDuration::from_secs(5));
    driver.kernel.win32_set_timer(
        179,
        1,
        "sidebar.exe:SetTimer",
        SimDuration::from_millis(2_000),
    );
    // NT-handle periodics for the service managers (taskeng's schedule
    // scan, the indexer's batch flush, the spooler's port poll).
    for (pid, origin, secs) in [
        (175u32, "taskeng.exe:NtSetTimer", 60u64),
        (176, "spoolsv.exe:NtSetTimer", 30),
        (177, "SearchIndexer.exe:NtSetTimer", 120),
        (171, "lsass.exe:NtSetTimer", 300),
        (172, "services.exe:NtSetTimer", 45),
    ] {
        let slot = driver.kernel.nt_create_timer(pid, origin);
        driver.kernel.nt_set_timer_periodic(
            pid,
            slot,
            SimDuration::from_secs(secs),
            Some(SimDuration::from_secs(secs)),
        );
    }
    // Event-style waits for wininit/audiodg (usually satisfied).
    event_service(driver, 170, 1);
    event_service(driver, 178, 1);
    // Threadpool periodics for the extra services too.
    driver.kernel.threadpool_set_timer(
        172,
        SimDuration::from_secs(20),
        Some(SimDuration::from_secs(20)),
    );
    driver.kernel.threadpool_set_timer(
        177,
        SimDuration::from_secs(90),
        Some(SimDuration::from_secs(90)),
    );
    // csrss: a 500 ms timed wait loop that always times out — one of the
    // "more than two timers per second" setters the paper names.
    sleep_loop(
        driver,
        pids::CSRSS,
        1,
        "csrss.exe:wait",
        SimDuration::from_millis(500),
    );
    // The audio tray applet: a 100 ms GUI timer.
    driver.kernel.win32_set_timer(
        pids::AUDIO_TRAY,
        1,
        "systray_audio.exe:SetTimer",
        SimDuration::from_millis(100),
    );
    // svchost instances: threadpool periodics at service-ish periods.
    let periods = [30u64, 60, 60, 120, 300, 300, 600, 900];
    for (i, &secs) in periods.iter().enumerate() {
        driver.kernel.threadpool_set_timer(
            pids::SVCHOST_BASE + i as u32,
            SimDuration::from_secs(secs),
            Some(SimDuration::from_secs(secs)),
        );
    }
    // An event-driven service: timed waits usually satisfied by its
    // partner's activity (Table 2's idle cancellations).
    event_service(driver, pids::SVCHOST_BASE + 3, 3);
    // Registry-using services exhibit the deferred lazy-close pattern.
    registry_bursts(driver, pids::SVCHOST_BASE + 4);
    registry_bursts(driver, pids::SVCHOST_BASE + 5);
    // A handful of service Sleep loops at round values.
    sleep_loop(
        driver,
        pids::SVCHOST_BASE,
        2,
        "svchost.exe:Sleep",
        SimDuration::from_secs(1),
    );
    sleep_loop(
        driver,
        pids::SVCHOST_BASE + 1,
        2,
        "svchost.exe:Sleep",
        SimDuration::from_secs(5),
    );
    sleep_loop(
        driver,
        pids::SVCHOST_BASE + 2,
        2,
        "svchost.exe:Sleep",
        SimDuration::from_secs(10),
    );
}

/// A thread that sleeps for a constant round value, forever — the *delay*
/// pattern. Restart is driven by the wait-timeout notification, so worlds
/// must route [`vistasim::VistaNotify::WaitTimedOut`] back via
/// [`resume_sleep_loops`].
pub fn sleep_loop<W: VistaWorld + 'static>(
    driver: &mut VistaDriver<W>,
    pid: Pid,
    tid: u32,
    origin: &'static str,
    period: SimDuration,
) {
    driver.kernel.sleep(pid, tid, origin, period);
}

/// Sleep-loop registry entry.
#[derive(Debug, Clone, Copy)]
pub struct SleepLoop {
    /// Owning process.
    pub pid: Pid,
    /// Owning thread.
    pub tid: u32,
    /// Provenance label.
    pub origin: &'static str,
    /// The constant sleep.
    pub period: SimDuration,
}

/// The default service sleep-loop registry matching [`boot_services`].
pub fn service_sleep_loops() -> Vec<SleepLoop> {
    use crate::pids;
    vec![
        SleepLoop {
            pid: pids::CSRSS,
            tid: 1,
            origin: "csrss.exe:wait",
            period: SimDuration::from_millis(500),
        },
        SleepLoop {
            pid: pids::SVCHOST_BASE,
            tid: 2,
            origin: "svchost.exe:Sleep",
            period: SimDuration::from_secs(1),
        },
        SleepLoop {
            pid: pids::SVCHOST_BASE + 1,
            tid: 2,
            origin: "svchost.exe:Sleep",
            period: SimDuration::from_secs(5),
        },
        SleepLoop {
            pid: pids::SVCHOST_BASE + 2,
            tid: 2,
            origin: "svchost.exe:Sleep",
            period: SimDuration::from_secs(10),
        },
    ]
}

/// Routes a wait timeout back into its sleep loop, if it belongs to one.
/// Returns `true` if handled.
pub fn resume_sleep_loops<W: VistaWorld + 'static>(
    driver: &mut VistaDriver<W>,
    loops: &[SleepLoop],
    pid: Pid,
    tid: u32,
) -> bool {
    if let Some(l) = loops.iter().find(|l| l.pid == pid && l.tid == tid) {
        let l = *l;
        driver.kernel.sleep(l.pid, l.tid, l.origin, l.period);
        true
    } else {
        false
    }
}

/// An event-driven service: waits 5 s, usually signalled within a couple
/// of seconds.
fn event_service<W: VistaWorld + 'static>(driver: &mut VistaDriver<W>, pid: Pid, tid: u32) {
    driver.kernel.wait_for_single_object(
        pid,
        tid,
        "svchost.exe:WaitEvent",
        SimDuration::from_secs(5),
    );
    let delay = SimDuration::from_millis(300 + (pid as u64 * 37 + tid as u64 * 911) % 2_500);
    driver.after(delay, move |d| {
        d.kernel.signal_wait(pid, tid);
        event_service(d, pid, tid);
    });
}

/// Bursty registry activity: a process touches the registry several
/// times in quick succession (each touch deferring the lazy-close
/// timer), then goes idle long enough for the close to fire — producing
/// the paper's fifth, Vista-specific *deferred* pattern.
pub fn registry_bursts<W: VistaWorld + 'static>(driver: &mut VistaDriver<W>, pid: Pid) {
    // Active phase: 3-6 accesses ~1.5 s apart.
    let touches = 3 + driver.rng.range_u64(0, 4);
    for i in 0..touches {
        let at = SimDuration::from_millis(200 + i * (1_200 + driver.rng.range_u64(0, 800)));
        driver.after(at, move |d| d.kernel.registry_access(pid));
    }
    // Idle long enough for the 5 s lazy close to fire, then repeat.
    let idle = SimDuration::from_secs(12 + driver.rng.range_u64(0, 10));
    let next = SimDuration::from_millis(200 + touches * 2_000) + idle;
    driver.after(next, move |d| registry_bursts(d, pid));
}

/// Runs `driver` for `duration` and returns the finished kernel.
pub fn finish<W: VistaWorld>(
    mut driver: VistaDriver<W>,
    duration: SimDuration,
) -> vistasim::VistaKernel {
    driver.run_until(SimInstant::BOOT + duration);
    driver.kernel
}
