//! The Vista Skype workload.
//!
//! A call in progress: the audio engine raises the timer resolution to
//! 1 ms and sleeps one millisecond per frame slot (the multimedia-timer
//! idiom), the main loop polls at 0.5 s-class values, and the call's
//! connection lives in the TCP timing wheel. Expiry-dominated like every
//! Vista trace, with a modest cancellation count from satisfied waits.

use netsim::{Link, NetFault};
use simtime::{Empirical, Sample, SimDuration, SimRng};
use trace::TraceSink;

use super::{boot_services, finish, resume_sleep_loops, service_sleep_loops, SleepLoop};
use crate::driver::{VistaDriver, VistaWorld};
use crate::pids;
use vistasim::{VistaConfig, VistaKernel, VistaNotify};

/// Skype state.
pub struct SkypeWorld {
    loops: Vec<SleepLoop>,
    /// Main-loop wait values (0.5 s class, Figure 7's 0.5/0.5156).
    wait_values: Empirical,
    /// The call's wheel-managed connection.
    conn: Option<u32>,
    /// The Internet path of the call (can carry a degradation episode).
    link: Link,
}

/// The audio thread's tid.
const AUDIO_TID: u32 = 1;
/// The main loop's tid.
const MAIN_TID: u32 = 2;

impl VistaWorld for SkypeWorld {
    fn on_notify(driver: &mut VistaDriver<Self>, notify: VistaNotify) {
        match notify {
            VistaNotify::WaitTimedOut { pid, tid } if pid == pids::SKYPE => match tid {
                AUDIO_TID => {
                    // Next 1 ms frame slot.
                    driver.kernel.sleep(
                        pids::SKYPE,
                        AUDIO_TID,
                        "skype.exe:Sleep_audio",
                        SimDuration::from_millis(1),
                    );
                }
                MAIN_TID => main_wait(driver),
                _ => {}
            },
            VistaNotify::WaitTimedOut { pid, tid } => {
                let loops = driver.world.loops.clone();
                resume_sleep_loops(driver, &loops, pid, tid);
            }
            VistaNotify::VtcpRetransmit { conn } => {
                // The resent voice segment is ACKed an RTT later.
                let link = driver.world.link.clone();
                if let Some(rtt) = link.send_segment_at(driver.now(), &mut driver.rng) {
                    driver.after(rtt, move |d| d.kernel.vtcp_ack(conn, None));
                }
            }
            _ => {}
        }
    }
}

/// The main loop's 0.5 s-class wait, often satisfied early by call
/// events (the WaitSatisfied cancellations of Table 2).
fn main_wait(driver: &mut VistaDriver<SkypeWorld>) {
    let secs = driver.world.wait_values.sample(&mut driver.rng);
    let timeout = SimDuration::from_secs_f64(secs);
    driver
        .kernel
        .wait_for_single_object(pids::SKYPE, MAIN_TID, "skype.exe:WaitMain", timeout);
    if driver.rng.chance(0.4) {
        let frac = driver.rng.unit_f64();
        let delay = timeout.mul_f64(frac).max(SimDuration::from_millis(1));
        driver.after(delay, |d| {
            if d.kernel.signal_wait(pids::SKYPE, MAIN_TID) {
                main_wait(d);
            }
        });
    }
}

/// The network thread: selects usually completed by arriving packets.
fn net_select(driver: &mut VistaDriver<SkypeWorld>) {
    driver.kernel.winsock_select(
        pids::SKYPE,
        7,
        "skype.exe:select",
        SimDuration::from_millis(100),
    );
    let ready = SimDuration::from_millis(5 + driver.rng.range_u64(0, 60));
    driver.after(ready, |d| {
        d.kernel.winsock_ready(pids::SKYPE, 7);
        net_select(d);
    });
}

/// Voice traffic on the wheel-managed connection.
fn schedule_voice(driver: &mut VistaDriver<SkypeWorld>) {
    let gap = SimDuration::from_millis(60 + driver.rng.range_u64(0, 120));
    driver.after(gap, |d| {
        if let Some(conn) = d.world.conn {
            d.kernel.vtcp_transmit(conn);
            let link = d.world.link.clone();
            if let Some(rtt) = link.send_segment_at(d.now(), &mut d.rng) {
                d.after(rtt, move |d| d.kernel.vtcp_ack(conn, Some(rtt)));
            }
            if d.rng.chance(0.5) {
                d.kernel.vtcp_data_received(conn);
            }
        }
        schedule_voice(d);
    });
}

/// Runs the Vista Skype workload; `net` attaches a degradation episode to
/// the call's Internet path ([`NetFault::none`] for the paper's conditions).
pub fn run(
    seed: u64,
    duration: SimDuration,
    sink: Box<dyn TraceSink>,
    net: NetFault,
    backend: wheel::Backend,
    policy: adaptive::AdaptivePolicy,
) -> VistaKernel {
    let cfg = VistaConfig {
        seed,
        backend,
        policy,
        ..VistaConfig::default()
    };
    let mut kernel = VistaKernel::new(cfg, sink);
    kernel.register_process(pids::SKYPE, "Skype.exe");
    kernel.set_timer_resolution(SimDuration::from_millis(1));
    let wait_values = Empirical::new(&[
        (0.5, 30.0),
        (0.5156, 12.0),
        (0.25, 10.0),
        (0.1, 14.0),
        (0.05, 12.0),
        (0.02, 12.0),
        (0.001, 10.0),
    ]);
    let rng = SimRng::new(seed ^ 0x5cfe);
    let mut driver = VistaDriver::new(
        kernel,
        rng,
        SkypeWorld {
            loops: service_sleep_loops(),
            wait_values,
            conn: None,
            link: Link::internet_lossy().with_fault(net),
        },
    );
    boot_services(&mut driver);
    let conn = driver.kernel.vtcp_connect(pids::SKYPE);
    driver.world.conn = Some(conn);
    let link = driver.world.link.clone();
    let rtt = link.sample_rtt_at(driver.now(), &mut driver.rng);
    driver.after(rtt, move |d| d.kernel.vtcp_established(conn));
    driver.kernel.sleep(
        pids::SKYPE,
        AUDIO_TID,
        "skype.exe:Sleep_audio",
        SimDuration::from_millis(1),
    );
    driver.after(SimDuration::from_millis(3), main_wait);
    // A GUI refresh timer.
    driver.kernel.win32_set_timer(
        pids::SKYPE,
        1,
        "skype.exe:SetTimer",
        SimDuration::from_millis(100),
    );
    schedule_voice(&mut driver);
    driver.after(SimDuration::from_millis(11), net_select);
    finish(driver, duration)
}
