//! The Vista idle-desktop workload.
//!
//! "A standard Vista desktop install, with a user logged in on the
//! console. No foreground applications were started, but 26 background
//! processes (in addition to the System and Idle tasks) were running"
//! (§3.5). Kernel (driver/subsystem) timers dominate; the user side is
//! the service population's Sleep loops, threadpool periodics, and the
//! tray applet's GUI timer. Almost everything expires — the Vista trace
//! signature of Table 2.

use simtime::{SimDuration, SimRng};
use trace::TraceSink;

use super::{boot_services, finish, resume_sleep_loops, service_sleep_loops, SleepLoop};
use crate::driver::{VistaDriver, VistaWorld};
use vistasim::{VistaConfig, VistaKernel, VistaNotify};

/// Idle-desktop state.
pub struct IdleWorld {
    loops: Vec<SleepLoop>,
}

impl VistaWorld for IdleWorld {
    fn on_notify(driver: &mut VistaDriver<Self>, notify: VistaNotify) {
        if let VistaNotify::WaitTimedOut { pid, tid } = notify {
            let loops = driver.world.loops.clone();
            resume_sleep_loops(driver, &loops, pid, tid);
        }
    }
}

/// Runs the Vista idle workload.
pub fn run(
    seed: u64,
    duration: SimDuration,
    sink: Box<dyn TraceSink>,
    backend: wheel::Backend,
    policy: adaptive::AdaptivePolicy,
) -> VistaKernel {
    let cfg = VistaConfig {
        seed,
        backend,
        policy,
        ..VistaConfig::default()
    };
    let kernel = VistaKernel::new(cfg, sink);
    let rng = SimRng::new(seed ^ 0x71d1e);
    let mut driver = VistaDriver::new(
        kernel,
        rng,
        IdleWorld {
            loops: service_sleep_loops(),
        },
    );
    boot_services(&mut driver);
    finish(driver, duration)
}
