//! The Figure 1 desktop: Outlook, a browser, system processes, kernel.
//!
//! "The kernel typically sets around a thousand timers per second, whilst
//! a typical application such as a web browser will set tens of timeouts
//! per second. Outlook uses around 70 timers per second when idle, but
//! during bursts of activity can set as many as 7000 timers in a second.
//! … this behavior was traced to a coding idiom whereby any upcall in
//! user interface code is wrapped in a form of timeout assertion which
//! catches upcalls lasting longer than 5 seconds" (§2.2.1).

use simtime::{Exp, Sample, SimDuration, SimRng};
use trace::TraceSink;

use super::{boot_services, finish, resume_sleep_loops, service_sleep_loops, SleepLoop};
use crate::driver::{VistaDriver, VistaWorld};
use crate::pids;
use vistasim::kernel::KernelLoadLevel;
use vistasim::{VistaConfig, VistaKernel, VistaNotify};

/// Desktop state.
pub struct OutlookWorld {
    loops: Vec<SleepLoop>,
    /// Upcalls per second while idle.
    idle_rate: f64,
    /// Upcalls per second during a burst.
    burst_rate: f64,
    /// Whether a burst is in progress.
    bursting: bool,
}

impl VistaWorld for OutlookWorld {
    fn on_notify(driver: &mut VistaDriver<Self>, notify: VistaNotify) {
        if let VistaNotify::WaitTimedOut { pid, tid } = notify {
            let loops = driver.world.loops.clone();
            resume_sleep_loops(driver, &loops, pid, tid);
        }
    }
}

/// One UI upcall: arm the 5 s assertion timeout, do the (fast) work,
/// cancel it.
fn ui_upcall(driver: &mut VistaDriver<OutlookWorld>, tid: u32) {
    driver.kernel.wait_for_single_object(
        pids::OUTLOOK,
        tid,
        "outlook.exe:UpcallAssert",
        SimDuration::from_secs(5),
    );
    // Upcalls complete in microseconds to a few milliseconds.
    let work = SimDuration::from_micros(100 + driver.rng.range_u64(0, 4_000));
    driver.after(work, move |d| {
        d.kernel.signal_wait(pids::OUTLOOK, tid);
    });
}

/// The upcall arrival process: Poisson at the idle rate, with bursts.
fn schedule_upcalls(driver: &mut VistaDriver<OutlookWorld>) {
    let rate = if driver.world.bursting {
        driver.world.burst_rate
    } else {
        driver.world.idle_rate
    };
    let gap = Exp::new(1.0 / rate).sample_duration(&mut driver.rng);
    driver.after(gap.max(SimDuration::from_micros(30)), |d| {
        // Spread upcalls across a few UI threads.
        let tid = 1 + d.rng.range_u64(0, 4) as u32;
        ui_upcall(d, tid);
        schedule_upcalls(d);
    });
}

/// Activity bursts: mail sync every ~20 s drives a 1 s burst.
fn schedule_bursts(driver: &mut VistaDriver<OutlookWorld>) {
    let gap = SimDuration::from_secs(15 + driver.rng.range_u64(0, 12));
    driver.after(gap, |d| {
        d.world.bursting = true;
        d.after(SimDuration::from_millis(900), |d| {
            d.world.bursting = false;
        });
        schedule_bursts(d);
    });
}

/// The browser: tens of sets per second from GUI timers and selects.
fn browser_activity(driver: &mut VistaDriver<OutlookWorld>) {
    driver.kernel.win32_set_timer(
        pids::BROWSER,
        1,
        "iexplore.exe:SetTimer",
        SimDuration::from_millis(100),
    );
    driver.kernel.win32_set_timer(
        pids::BROWSER,
        2,
        "iexplore.exe:SetTimer",
        SimDuration::from_millis(250),
    );
    fn fetch(driver: &mut VistaDriver<OutlookWorld>) {
        let gap = SimDuration::from_millis(300 + driver.rng.range_u64(0, 900));
        driver.after(gap, |d| {
            d.kernel.winsock_select(
                pids::BROWSER,
                9,
                "iexplore.exe:select",
                SimDuration::from_millis(500),
            );
            let ready = SimDuration::from_millis(10 + d.rng.range_u64(0, 250));
            d.after(ready, |d| {
                d.kernel.winsock_ready(pids::BROWSER, 9);
            });
            fetch(d);
        });
    }
    fetch(driver);
}

/// Runs the Figure 1 desktop (typically for a 90-second excerpt).
pub fn run(
    seed: u64,
    duration: SimDuration,
    sink: Box<dyn TraceSink>,
    backend: wheel::Backend,
    policy: adaptive::AdaptivePolicy,
) -> VistaKernel {
    let cfg = VistaConfig {
        seed,
        kernel_load: KernelLoadLevel::Desktop,
        backend,
        policy,
        ..VistaConfig::default()
    };
    let mut kernel = VistaKernel::new(cfg, sink);
    kernel.register_process(pids::OUTLOOK, "outlook.exe");
    kernel.register_process(pids::BROWSER, "iexplore.exe");
    let rng = SimRng::new(seed ^ 0x07d0);
    let mut driver = VistaDriver::new(
        kernel,
        rng,
        OutlookWorld {
            loops: service_sleep_loops(),
            idle_rate: 70.0,
            burst_rate: 6_500.0,
            bursting: false,
        },
    );
    boot_services(&mut driver);
    browser_activity(&mut driver);
    schedule_upcalls(&mut driver);
    schedule_bursts(&mut driver);
    finish(driver, duration)
}
