//! The Vista Firefox workload.
//!
//! The paper: "the Firefox workload uses an even larger number of timers
//! (2881 timers are set per second), many well below 10 ms" (§4.3), and
//! its Table 2 column is overwhelmingly expiry-driven (5.05 M expiries vs
//! 16 k cancellations). The Flash plugin raises the timer resolution to
//! 1 ms (`timeBeginPeriod`), then the soft-real-time threads poll with
//! sub-10 ms timed waits that virtually always time out; sub-millisecond
//! requests are still delivered "at essentially random times" relative to
//! their nominal value.

use simtime::{Empirical, Sample, SimDuration, SimRng};
use trace::TraceSink;

use super::{boot_services, finish, resume_sleep_loops, service_sleep_loops, SleepLoop};
use crate::driver::{VistaDriver, VistaWorld};
use crate::pids;
use vistasim::{VistaConfig, VistaKernel, VistaNotify};

/// Firefox's soft-real-time polling threads.
const POLL_THREADS: u32 = 5;

/// Firefox state.
pub struct FirefoxWorld {
    loops: Vec<SleepLoop>,
    /// Sub-10 ms wait values, weighted toward sub-millisecond.
    wait_values: Empirical,
}

impl VistaWorld for FirefoxWorld {
    fn on_notify(driver: &mut VistaDriver<Self>, notify: VistaNotify) {
        match notify {
            VistaNotify::WaitTimedOut { pid, tid } if pid == pids::FIREFOX => {
                // The poll loop immediately re-waits.
                poll_wait(driver, tid);
            }
            VistaNotify::WaitTimedOut { pid, tid } => {
                let loops = driver.world.loops.clone();
                resume_sleep_loops(driver, &loops, pid, tid);
            }
            VistaNotify::SelectTimedOut { pid, tid } if pid == pids::FIREFOX => {
                // A network select ran out; the fetch loop continues.
                let _ = tid;
            }
            _ => {}
        }
    }
}

/// One soft-real-time timed wait.
fn poll_wait(driver: &mut VistaDriver<FirefoxWorld>, tid: u32) {
    let secs = driver.world.wait_values.sample(&mut driver.rng);
    driver.kernel.wait_for_single_object(
        pids::FIREFOX,
        tid,
        "firefox.exe:MsgWait",
        SimDuration::from_secs_f64(secs),
    );
}

/// Periodic network fetches through Winsock select (the fresh-KTIMER
/// path), usually completed by socket readiness — the trace's small
/// cancellation count.
fn schedule_fetch(driver: &mut VistaDriver<FirefoxWorld>) {
    let gap = SimDuration::from_millis(400 + driver.rng.range_u64(0, 800));
    driver.after(gap, |d| {
        d.kernel.winsock_select(
            pids::FIREFOX,
            50,
            "firefox.exe:select",
            SimDuration::from_millis(250),
        );
        let ready = SimDuration::from_millis(20 + d.rng.range_u64(0, 180));
        d.after(ready, |d| {
            d.kernel.winsock_ready(pids::FIREFOX, 50);
        });
        schedule_fetch(d);
    });
}

/// Runs the Vista Firefox workload.
pub fn run(
    seed: u64,
    duration: SimDuration,
    sink: Box<dyn TraceSink>,
    backend: wheel::Backend,
    policy: adaptive::AdaptivePolicy,
) -> VistaKernel {
    let cfg = VistaConfig {
        seed,
        backend,
        policy,
        ..VistaConfig::default()
    };
    let mut kernel = VistaKernel::new(cfg, sink);
    kernel.register_process(pids::FIREFOX, "firefox.exe");
    // Flash raises the clock-interrupt rate to 1 ms.
    kernel.set_timer_resolution(SimDuration::from_millis(1));
    let wait_values = Empirical::new(&[
        (0.0003, 18.0),
        (0.0005, 16.0),
        (0.001, 20.0),
        (0.002, 12.0),
        (0.003, 10.0),
        (0.005, 12.0),
        (0.010, 12.0),
    ]);
    let rng = SimRng::new(seed ^ 0x7f1e);
    let mut driver = VistaDriver::new(
        kernel,
        rng,
        FirefoxWorld {
            loops: service_sleep_loops(),
            wait_values,
        },
    );
    boot_services(&mut driver);
    // GUI repaint timers.
    driver.kernel.win32_set_timer(
        pids::FIREFOX,
        1,
        "firefox.exe:SetTimer",
        SimDuration::from_millis(10),
    );
    driver.kernel.win32_set_timer(
        pids::FIREFOX,
        2,
        "firefox.exe:SetTimer",
        SimDuration::from_millis(50),
    );
    for tid in 1..=POLL_THREADS {
        poll_wait(&mut driver, tid);
    }
    schedule_fetch(&mut driver);
    finish(driver, duration)
}
