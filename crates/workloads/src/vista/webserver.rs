//! The Vista webserver workload.
//!
//! Apache 2.2.3 on Vista behind a 100 Mb switch, driven by the same
//! httperf profile (§3.5). The striking Table 2 result: the webserver's
//! kernel timer activity (203 k accesses) is barely above *idle* (215 k)
//! despite 30000 connections — because the re-architected TCP/IP stack
//! parks per-connection timeouts in its per-CPU timing wheel, and only
//! the wheel's driving tick touches the KTIMER ring. The user side is
//! Apache's per-request timed waits.

use netsim::NetFault;
use simtime::{Exp, Sample, SimDuration, SimRng};
use trace::TraceSink;

use super::{boot_services, finish, resume_sleep_loops, service_sleep_loops, SleepLoop};
use crate::driver::{VistaDriver, VistaWorld};
use crate::pids;
use vistasim::{VistaConfig, VistaKernel, VistaNotify};

/// Apache worker threads.
const WORKERS: u32 = 8;

/// Webserver state.
pub struct WebWorld {
    loops: Vec<SleepLoop>,
    remaining: u64,
    inflight: u32,
    parallel: u32,
    link: netsim::Link,
    interarrival: Exp,
}

impl VistaWorld for WebWorld {
    fn on_notify(driver: &mut VistaDriver<Self>, notify: VistaNotify) {
        match notify {
            VistaNotify::WaitTimedOut { pid, tid } if pid == pids::APACHE => {
                // An idle worker's 15 s keep-waiting timeout lapsed;
                // re-wait.
                worker_wait(driver, tid);
            }
            VistaNotify::WaitTimedOut { pid, tid } => {
                let loops = driver.world.loops.clone();
                resume_sleep_loops(driver, &loops, pid, tid);
            }
            VistaNotify::VtcpRetransmit { conn } => {
                let link = driver.world.link.clone();
                if let Some(rtt) = link.send_segment_at(driver.now(), &mut driver.rng) {
                    driver.after(rtt, move |d| d.kernel.vtcp_ack(conn, None));
                }
            }
            _ => {}
        }
    }
}

/// A worker blocks waiting for a connection with a 15 s timeout.
fn worker_wait(driver: &mut VistaDriver<WebWorld>, tid: u32) {
    driver.kernel.wait_for_single_object(
        pids::APACHE,
        tid,
        "httpd.exe:WaitForConnection",
        SimDuration::from_secs(15),
    );
}

fn maybe_issue(driver: &mut VistaDriver<WebWorld>) {
    if driver.world.remaining == 0 || driver.world.inflight >= driver.world.parallel {
        return;
    }
    driver.world.remaining -= 1;
    driver.world.inflight += 1;
    let tid = 1 + driver.rng.range_u64(0, WORKERS as u64) as u32;
    serve_request(driver, tid);
}

fn schedule_arrivals(driver: &mut VistaDriver<WebWorld>) {
    let gap = driver.world.interarrival.sample_duration(&mut driver.rng);
    driver.after(gap.max(SimDuration::from_micros(200)), |d| {
        maybe_issue(d);
        if d.world.remaining > 0 {
            schedule_arrivals(d);
        }
    });
}

fn serve_request(driver: &mut VistaDriver<WebWorld>, tid: u32) {
    // SYN: the connection enters the TCP wheel (no KTIMER traffic).
    let conn = driver.kernel.vtcp_connect(pids::APACHE);
    // The worker's wait is satisfied by the new connection.
    driver.kernel.signal_wait(pids::APACHE, tid);
    let link = driver.world.link.clone();
    let rtt = link.sample_rtt_at(driver.now(), &mut driver.rng);
    driver.after(rtt, move |d| {
        d.kernel.vtcp_established(conn);
        d.kernel.vtcp_data_received(conn);
        let service = simtime::LogNormal::from_median(0.0015, 0.6)
            .sample_duration(&mut d.rng)
            .max(SimDuration::from_micros(300));
        d.after(service, move |d| {
            d.kernel.vtcp_transmit(conn);
            let link = d.world.link.clone();
            let rtt2 = link.sample_rtt_at(d.now(), &mut d.rng);
            d.after(rtt2, move |d| {
                d.kernel.vtcp_ack(conn, Some(rtt2));
                d.kernel.vtcp_close(conn);
                d.world.inflight -= 1;
                maybe_issue(d);
                worker_wait(d, tid);
            });
        });
    });
}

/// Runs the Vista webserver workload; `net` attaches a degradation
/// episode to the switch path ([`NetFault::none`] for the paper's
/// conditions).
pub fn run(
    seed: u64,
    duration: SimDuration,
    sink: Box<dyn TraceSink>,
    net: NetFault,
    backend: wheel::Backend,
    policy: adaptive::AdaptivePolicy,
) -> VistaKernel {
    let cfg = VistaConfig {
        seed,
        backend,
        policy,
        ..VistaConfig::default()
    };
    let mut kernel = VistaKernel::new(cfg, sink);
    kernel.register_process(pids::APACHE, "httpd.exe");
    // The paper's 30000 requests over its 30-minute trace; shorter runs
    // keep the same request density.
    let total_requests = ((30_000.0 * duration.as_secs_f64() / 1_800.0) as u64).max(100);
    let mean_gap = duration.as_secs_f64() / total_requests as f64;
    let rng = SimRng::new(seed ^ 0x3eb5);
    let mut driver = VistaDriver::new(
        kernel,
        rng,
        WebWorld {
            loops: service_sleep_loops(),
            remaining: total_requests,
            inflight: 0,
            parallel: 10,
            link: netsim::Link::lan_100mb().with_fault(net),
            interarrival: Exp::new(mean_gap.max(1e-4)),
        },
    );
    boot_services(&mut driver);
    for tid in 1..=WORKERS {
        worker_wait(&mut driver, tid);
    }
    schedule_arrivals(&mut driver);
    finish(driver, duration)
}
