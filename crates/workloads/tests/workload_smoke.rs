//! Smoke and shape tests for every workload on both OS models.
//!
//! Full 30-minute runs belong to the reproduction binaries; these tests
//! run 1–2 simulated minutes and assert the qualitative shape targets the
//! paper reports.

use simtime::SimDuration;
use trace::NullSink;
use workloads::{run_linux, run_vista, Workload};

const MINUTE: SimDuration = SimDuration::from_secs(60);

#[test]
fn linux_idle_is_user_dominated() {
    let k = run_linux(Workload::Idle, 7, MINUTE, Box::new(NullSink));
    let c = k.log().counts();
    assert!(c.accesses > 1_000, "accesses = {}", c.accesses);
    assert!(
        c.user_space > c.kernel,
        "idle desktop should be user-dominated: user {} vs kernel {}",
        c.user_space,
        c.kernel
    );
}

#[test]
fn linux_firefox_is_much_busier_than_idle() {
    let idle = run_linux(Workload::Idle, 7, MINUTE, Box::new(NullSink));
    let ff = run_linux(Workload::Firefox, 7, MINUTE, Box::new(NullSink));
    let (ci, cf) = (idle.log().counts(), ff.log().counts());
    assert!(
        cf.accesses > 5 * ci.accesses,
        "firefox {} vs idle {}",
        cf.accesses,
        ci.accesses
    );
    // The paper: 81 % of Firefox sets are cancelled — cancels dominate
    // expiries heavily.
    assert!(
        cf.canceled > 2 * cf.expired,
        "canceled {} vs expired {}",
        cf.canceled,
        cf.expired
    );
}

#[test]
fn linux_webserver_is_kernel_dominated() {
    let k = run_linux(Workload::Webserver, 7, MINUTE * 2, Box::new(NullSink));
    let c = k.log().counts();
    assert!(
        c.kernel > c.user_space,
        "webserver should be kernel-dominated: kernel {} vs user {}",
        c.kernel,
        c.user_space
    );
    // Most webserver sets are cancelled (completions beat timeouts).
    assert!(
        c.canceled * 2 > c.expired,
        "c={} e={}",
        c.canceled,
        c.expired
    );
}

#[test]
fn linux_skype_sits_between_idle_and_firefox() {
    let idle = run_linux(Workload::Idle, 7, MINUTE, Box::new(NullSink));
    let skype = run_linux(Workload::Skype, 7, MINUTE, Box::new(NullSink));
    let ff = run_linux(Workload::Firefox, 7, MINUTE, Box::new(NullSink));
    let (ci, cs, cf) = (idle.log().counts(), skype.log().counts(), ff.log().counts());
    assert!(
        ci.accesses < cs.accesses && cs.accesses < cf.accesses,
        "idle {} < skype {} < firefox {}",
        ci.accesses,
        cs.accesses,
        cf.accesses
    );
}

#[test]
fn vista_traces_are_expiry_dominated() {
    for w in [Workload::Idle, Workload::Skype, Workload::Firefox] {
        let k = run_vista(w, 7, MINUTE, Box::new(NullSink));
        let c = k.log().counts();
        assert!(
            c.expired > 3 * c.canceled.max(1),
            "{w:?}: expired {} vs canceled {}",
            c.expired,
            c.canceled
        );
    }
}

#[test]
fn vista_idle_is_kernel_dominated() {
    let k = run_vista(Workload::Idle, 7, MINUTE, Box::new(NullSink));
    let c = k.log().counts();
    assert!(
        c.kernel > c.user_space,
        "kernel {} vs user {}",
        c.kernel,
        c.user_space
    );
}

#[test]
fn vista_webserver_kernel_activity_is_near_idle() {
    // The TCP-wheel effect: despite heavy connection traffic, the
    // webserver's KTIMER activity stays near idle levels.
    let idle = run_vista(Workload::Idle, 7, MINUTE * 2, Box::new(NullSink));
    let web = run_vista(Workload::Webserver, 7, MINUTE * 2, Box::new(NullSink));
    let (ci, cw) = (idle.log().counts(), web.log().counts());
    let ratio = cw.kernel as f64 / ci.kernel as f64;
    assert!(
        (0.8..1.6).contains(&ratio),
        "webserver kernel {} vs idle kernel {} (ratio {ratio:.2})",
        cw.kernel,
        ci.kernel
    );
    assert!(web.vtcp_masked_ops() > 1_000, "wheel must absorb TCP ops");
}

#[test]
fn vista_firefox_sets_thousands_per_second() {
    let k = run_vista(Workload::Firefox, 7, MINUTE, Box::new(NullSink));
    let c = k.log().counts();
    let rate = c.set as f64 / 60.0;
    assert!(
        (1_000.0..6_000.0).contains(&rate),
        "firefox vista set rate = {rate}/s"
    );
}

#[test]
fn outlook_desktop_has_bursts() {
    let k = run_vista(Workload::Outlook, 7, MINUTE, Box::new(NullSink));
    let c = k.log().counts();
    // Kernel ~1000 sets/s plus the application load.
    assert!(c.set > 50_000, "set = {}", c.set);
}

#[test]
fn runs_are_deterministic() {
    let a = run_linux(Workload::Skype, 42, MINUTE, Box::new(NullSink));
    let b = run_linux(Workload::Skype, 42, MINUTE, Box::new(NullSink));
    assert_eq!(a.log().counts(), b.log().counts());
    let c = run_linux(Workload::Skype, 43, MINUTE, Box::new(NullSink));
    assert_ne!(a.log().counts(), c.log().counts());
}
