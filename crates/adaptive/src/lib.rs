//! Adaptive timeouts and richer timer interfaces — the paper's Section 5
//! proposals, built as a reusable library.
//!
//! The study's headline negative result is that almost no timer values
//! are derived from measurement: they are fixed, round, human numbers
//! ("30 seconds"), with TCP's retransmission timer the lone adaptive
//! example. Section 5 sketches what a better timer subsystem would offer;
//! this crate implements those sketches:
//!
//! * [`quantile`] — a streaming P² quantile estimator, the learning core;
//! * [`estimator`] — §5.1's *adaptive timeout*: "time out once the system
//!   is 99 % confident that a message will never be arriving", with
//!   level-shift detection for environment changes (LAN → WAN);
//! * [`rtt`] — the Jacobson/Karels estimator with Karn's rule, the
//!   existing adaptive timer the paper holds up as the model;
//! * [`backoff`] — exponential backoff (the paper's SunRPC 7 × 500 ms
//!   example runs on this);
//! * [`deps`] — §5.2's timeout provenance and dependency relations:
//!   overlap rules (a)/(b)/(c), dependency edges, the
//!   overlap↔dependency transformation and concurrent-timer reduction;
//! * [`timespec`] — §5.3's "better notion of time": *any time after*,
//!   *every t on average*, *n deviations above the mean*, and a wakeup
//!   coalescer that exploits that looseness to batch expiries (the
//!   `round_jiffies`/deferrable generalisation);
//! * [`usecase`] — §5.4's use-case-specific interfaces: drift-free
//!   periodic tickers, RAII timeout guards (the Win32 auto-object idiom),
//!   watchdogs and delays;
//! * [`dispatch`] — §5.5's end-game: a unified dispatcher where
//!   applications declare *what code to run when* and one schedule
//!   subsumes every timer use case.

pub mod backoff;
pub mod deps;
pub mod dispatch;
pub mod estimator;
pub mod policy;
pub mod quantile;
pub mod rtt;
pub mod timespec;
pub mod usecase;

pub use backoff::ExponentialBackoff;
pub use dispatch::{Dispatch, Dispatcher, Intent, IntentId};
pub use estimator::AdaptiveTimeout;
pub use policy::AdaptivePolicy;
pub use quantile::P2Quantile;
pub use rtt::RttEstimator;
pub use timespec::{Coalescer, TimeSpec};
pub use usecase::{DelayTimer, PeriodicTicker, TimeoutGuard, Watchdog};
