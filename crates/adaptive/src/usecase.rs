//! Use-case-specific timer interfaces (Section 5.4).
//!
//! The paper observes that one generic set/cancel interface serves at
//! least five distinct purposes, and proposes replacing it with
//! abstractions tailored to each: periodic tickers ("every t, invoke
//! f"), scoped timeouts ("if this procedure has not returned in t,
//! invoke e" — the Win32 auto-object idiom), watchdogs ("if this code
//! path has not executed within t, invoke f") and delays ("after t,
//! invoke e"). These are plain state machines over virtual time so every
//! simulator and experiment can reuse them.

use std::cell::RefCell;
use std::rc::Rc;

use simtime::{SimDuration, SimInstant};

/// A drift-free periodic ticker.
///
/// Naive periodic code re-arms `now + period` from inside the callback,
/// accumulating delivery latency into drift — one reason "periodic
/// tickers requiring precision would benefit from not having to reset
/// themselves and correct for the time taken to do this" (§5.4). The
/// ticker anchors every tick to the ideal grid instead.
#[derive(Debug, Clone)]
pub struct PeriodicTicker {
    base: SimInstant,
    period: SimDuration,
    /// Ticks delivered so far.
    ticks: u64,
}

impl PeriodicTicker {
    /// Creates a ticker anchored at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn new(base: SimInstant, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        PeriodicTicker {
            base,
            period,
            ticks: 0,
        }
    }

    /// The instant of the next tick (strictly after the last delivered).
    pub fn next_tick(&self) -> SimInstant {
        self.base + self.period * (self.ticks + 1)
    }

    /// Delivers every tick due at or before `now`; returns their ideal
    /// instants (late delivery does not shift the grid).
    pub fn advance_to(&mut self, now: SimInstant) -> Vec<SimInstant> {
        let mut fired = Vec::new();
        while self.next_tick() <= now {
            self.ticks += 1;
            fired.push(self.base + self.period * self.ticks);
        }
        fired
    }

    /// Ticks delivered so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

/// Shared registry of scoped timeouts with nested-timeout elision.
///
/// "Specifying timeouts in this manner allows the timer implementation to
/// identify the dependencies when nested timeouts are specified by code
/// on the same thread. If the duration of an inner-level timeout exceeds
/// an already-waiting timeout, the inner timeout may be ignored" (§5.4).
#[derive(Debug, Default)]
pub struct GuardRegistry {
    /// Stack of armed deadlines, innermost last.
    stack: Vec<(u64, SimInstant)>,
    next_id: u64,
    /// Timeouts skipped because an enclosing deadline was tighter.
    pub elided: u64,
    /// Timeouts actually armed.
    pub armed: u64,
}

/// Shared handle to a registry.
pub type GuardRegistryRef = Rc<RefCell<GuardRegistry>>;

/// Creates a fresh shared registry.
pub fn guard_registry() -> GuardRegistryRef {
    Rc::new(RefCell::new(GuardRegistry::default()))
}

/// An RAII scoped timeout: arms on construction, cancels on drop.
#[derive(Debug)]
pub struct TimeoutGuard {
    registry: GuardRegistryRef,
    /// `None` if this guard was elided by an enclosing tighter deadline.
    id: Option<u64>,
    /// The effective deadline guarding this scope.
    deadline: SimInstant,
}

impl TimeoutGuard {
    /// Declares "if this scope has not exited by `now + timeout`, the
    /// enclosing failure handler fires".
    pub fn arm(registry: &GuardRegistryRef, now: SimInstant, timeout: SimDuration) -> Self {
        let mut reg = registry.borrow_mut();
        let deadline = now + timeout;
        let enclosing = reg.stack.last().map(|&(_, d)| d);
        // Elide timeouts no tighter than the enclosing deadline.
        if let Some(outer) = enclosing {
            if deadline >= outer {
                reg.elided += 1;
                return TimeoutGuard {
                    registry: Rc::clone(registry),
                    id: None,
                    deadline: outer,
                };
            }
        }
        let id = reg.next_id;
        reg.next_id += 1;
        reg.armed += 1;
        reg.stack.push((id, deadline));
        TimeoutGuard {
            registry: Rc::clone(registry),
            id: Some(id),
            deadline,
        }
    }

    /// The deadline effectively guarding this scope.
    pub fn deadline(&self) -> SimInstant {
        self.deadline
    }

    /// Whether this guard armed its own timer (vs. piggybacking on an
    /// enclosing one).
    pub fn is_armed(&self) -> bool {
        self.id.is_some()
    }

    /// Whether the scope has overrun its deadline by `now`.
    ///
    /// The deadline instant itself counts as expired — every timer in
    /// this crate fires *at* its deadline (see [`Watchdog::expired`],
    /// [`DelayTimer::poll`] and `Dispatcher::advance_to`, which share the
    /// same inclusive boundary).
    pub fn expired(&self, now: SimInstant) -> bool {
        now >= self.deadline
    }
}

impl Drop for TimeoutGuard {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            let mut reg = self.registry.borrow_mut();
            reg.stack.retain(|&(i, _)| i != id);
        }
    }
}

/// A watchdog: fires only if not patted within its window.
#[derive(Debug, Clone)]
pub struct Watchdog {
    timeout: SimDuration,
    deadline: SimInstant,
    /// Times the deadline was pushed out.
    pats: u64,
}

impl Watchdog {
    /// Creates a watchdog whose first window starts at `now`.
    pub fn new(now: SimInstant, timeout: SimDuration) -> Self {
        Watchdog {
            timeout,
            deadline: now + timeout,
            pats: 0,
        }
    }

    /// The code path executed: defer the deadline.
    ///
    /// Returns `true` if the pat landed in time. A pat arriving exactly
    /// at (or after) the deadline is too late — the watchdog has already
    /// fired, and silently sliding the deadline would swallow that fire
    /// (the caller must observe the expiry and [`Watchdog::restart`] the
    /// window instead).
    pub fn pat(&mut self, now: SimInstant) -> bool {
        if self.expired(now) {
            return false;
        }
        self.deadline = now + self.timeout;
        self.pats += 1;
        true
    }

    /// Acknowledges a fired watchdog and restarts its window at `now`.
    pub fn restart(&mut self, now: SimInstant) {
        self.deadline = now + self.timeout;
    }

    /// Returns `true` if the watchdog has fired by `now`.
    ///
    /// Inclusive at the boundary: the watchdog fires *at* its deadline,
    /// matching [`TimeoutGuard::expired`] and `Dispatcher::advance_to`.
    pub fn expired(&self, now: SimInstant) -> bool {
        now >= self.deadline
    }

    /// The current deadline.
    pub fn deadline(&self) -> SimInstant {
        self.deadline
    }

    /// Number of deferrals.
    pub fn pats(&self) -> u64 {
        self.pats
    }
}

/// A one-shot delay: "after time t, invoke e".
#[derive(Debug, Clone, Copy)]
pub struct DelayTimer {
    fire_at: SimInstant,
    fired: bool,
}

impl DelayTimer {
    /// Creates a delay due at `now + delay`.
    pub fn new(now: SimInstant, delay: SimDuration) -> Self {
        DelayTimer {
            fire_at: now + delay,
            fired: false,
        }
    }

    /// Polls the delay; returns `true` exactly once, at or after the due
    /// time.
    pub fn poll(&mut self, now: SimInstant) -> bool {
        if !self.fired && now >= self.fire_at {
            self.fired = true;
            true
        } else {
            false
        }
    }

    /// The due instant.
    pub fn fire_at(&self) -> SimInstant {
        self.fire_at
    }
}

/// Statistics bundle for nested-guard experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct GuardStats {
    /// Timeouts armed.
    pub armed: u64,
    /// Timeouts elided by nesting.
    pub elided: u64,
}

/// Snapshot of a registry's statistics.
pub fn guard_stats(registry: &GuardRegistryRef) -> GuardStats {
    let reg = registry.borrow();
    GuardStats {
        armed: reg.armed,
        elided: reg.elided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimInstant {
        SimInstant::BOOT + SimDuration::from_millis(ms)
    }

    #[test]
    fn ticker_is_drift_free() {
        let mut t = PeriodicTicker::new(at(0), SimDuration::from_millis(100));
        // Delivery is late every time, but ticks stay on the grid.
        assert_eq!(t.advance_to(at(137)), vec![at(100)]);
        assert_eq!(t.advance_to(at(263)), vec![at(200)]);
        assert_eq!(t.advance_to(at(599)), vec![at(300), at(400), at(500)]);
        assert_eq!(t.ticks(), 5);
        assert_eq!(t.next_tick(), at(600));
    }

    #[test]
    fn guard_cancels_on_drop() {
        let reg = guard_registry();
        {
            let g = TimeoutGuard::arm(&reg, at(0), SimDuration::from_secs(5));
            assert!(g.is_armed());
            assert_eq!(reg.borrow().stack.len(), 1);
        }
        assert_eq!(reg.borrow().stack.len(), 0);
        assert_eq!(guard_stats(&reg).armed, 1);
    }

    #[test]
    fn looser_nested_guard_is_elided() {
        let reg = guard_registry();
        let outer = TimeoutGuard::arm(&reg, at(0), SimDuration::from_secs(5));
        {
            // Inner timeout of 30 s under a 5 s outer: pointless; elided.
            let inner = TimeoutGuard::arm(&reg, at(100), SimDuration::from_secs(30));
            assert!(!inner.is_armed());
            assert_eq!(inner.deadline(), outer.deadline());
        }
        let stats = guard_stats(&reg);
        assert_eq!(stats.armed, 1);
        assert_eq!(stats.elided, 1);
    }

    #[test]
    fn tighter_nested_guard_is_armed() {
        let reg = guard_registry();
        let _outer = TimeoutGuard::arm(&reg, at(0), SimDuration::from_secs(30));
        let inner = TimeoutGuard::arm(&reg, at(100), SimDuration::from_secs(1));
        assert!(inner.is_armed());
        assert!(inner.expired(at(1200)));
        assert!(!inner.expired(at(900)));
    }

    #[test]
    fn watchdog_defers_and_fires() {
        let mut w = Watchdog::new(at(0), SimDuration::from_millis(500));
        for i in 1..=10 {
            assert!(!w.expired(at(i * 100)));
            w.pat(at(i * 100));
        }
        assert_eq!(w.pats(), 10);
        assert!(!w.expired(at(1400)));
        assert!(w.expired(at(1500)));
    }

    #[test]
    fn delay_fires_once() {
        let mut d = DelayTimer::new(at(0), SimDuration::from_millis(100));
        assert!(!d.poll(at(99)));
        assert!(d.poll(at(100)));
        assert!(!d.poll(at(200)));
    }

    #[test]
    fn guard_expires_exactly_at_its_deadline() {
        // Regression: TimeoutGuard used an exclusive boundary while
        // Watchdog/DelayTimer fired inclusively — a guard polled exactly
        // at its deadline reported "still alive" even though the same
        // deadline in the dispatcher had already fired.
        let reg = guard_registry();
        let g = TimeoutGuard::arm(&reg, at(0), SimDuration::from_secs(1));
        assert!(!g.expired(at(999)));
        assert!(g.expired(at(1000)));
    }

    #[test]
    fn pat_at_deadline_is_too_late() {
        // Regression: a pat landing exactly at the deadline used to slide
        // the window, so the fire due at that instant was never observed.
        let mut w = Watchdog::new(at(0), SimDuration::from_millis(500));
        assert!(w.pat(at(499)), "pat before the deadline must land");
        // Deadline is now 999; pat exactly there must be refused.
        assert!(!w.pat(at(999)));
        assert!(w.expired(at(999)));
        assert_eq!(w.pats(), 1);
        // Acknowledge and restart: the window runs again.
        w.restart(at(999));
        assert!(!w.expired(at(1400)));
        assert!(w.expired(at(1499)));
    }

    #[test]
    fn watchdog_and_guard_agree_at_the_boundary() {
        let reg = guard_registry();
        let g = TimeoutGuard::arm(&reg, at(0), SimDuration::from_millis(250));
        let w = Watchdog::new(at(0), SimDuration::from_millis(250));
        let mut d = DelayTimer::new(at(0), SimDuration::from_millis(250));
        for ms in [249u64, 250, 251] {
            assert_eq!(g.expired(at(ms)), w.expired(at(ms)), "at {ms}");
        }
        assert!(!d.poll(at(249)));
        assert!(d.poll(at(250)) && w.expired(at(250)) && g.expired(at(250)));
    }
}
