//! A better notion of time (Section 5.3), and wakeup coalescing.
//!
//! "The programmer probably meant: *please wake up this thread at some
//! convenient time in the next 10 minutes* … If the precision of a
//! timeout is separately specified, the OS has the ability to batch
//! timeout delivery, perhaps allowing the processor or disk to be placed
//! in a power-saving mode."
//!
//! [`TimeSpec`] expresses the intended flexibility; [`Coalescer`] turns a
//! set of flexible deadlines into the *minimum* number of wakeups (the
//! classical greedy interval-stabbing algorithm), generalising the
//! kernel's `round_jiffies` hack.

use simtime::{SimDuration, SimInstant};

/// An expiry-time specification with explicit flexibility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeSpec {
    /// Exactly this instant (the legacy interface's implicit contract).
    Exact(SimInstant),
    /// Any time within `[earliest, latest]` — "some convenient time in
    /// the next ten minutes".
    Window {
        /// Earliest acceptable firing.
        earliest: SimInstant,
        /// Latest acceptable firing.
        latest: SimInstant,
    },
    /// Any time at or after this instant (pure delay; unbounded slack).
    AnyTimeAfter(SimInstant),
}

impl TimeSpec {
    /// The `[earliest, latest]` interval, clamping unbounded slack to
    /// `horizon`.
    pub fn interval(&self, horizon: SimInstant) -> (SimInstant, SimInstant) {
        match *self {
            TimeSpec::Exact(t) => (t, t),
            TimeSpec::Window { earliest, latest } => (earliest, latest),
            TimeSpec::AnyTimeAfter(t) => (t, horizon.saturating_add(SimDuration::ZERO).max(t)),
        }
    }
}

/// One planned wakeup serving a batch of requests.
#[derive(Debug, Clone, PartialEq)]
pub struct Wakeup {
    /// When the CPU wakes.
    pub at: SimInstant,
    /// The request ids served by this wakeup.
    pub ids: Vec<u64>,
}

/// Plans the minimum number of wakeups covering a set of requests.
#[derive(Debug, Default)]
pub struct Coalescer {
    requests: Vec<(u64, TimeSpec)>,
}

impl Coalescer {
    /// Creates an empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a request.
    pub fn add(&mut self, id: u64, spec: TimeSpec) {
        self.requests.push((id, spec));
    }

    /// Number of requests added.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` if no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Computes the minimal wakeup schedule over the given horizon.
    ///
    /// Greedy interval stabbing: sort by latest acceptable time; place a
    /// wakeup at the first uncovered request's *latest* instant, and
    /// serve every request whose window contains it. This is optimal for
    /// interval piercing.
    pub fn plan(&self, horizon: SimInstant) -> Vec<Wakeup> {
        let mut intervals: Vec<(u64, SimInstant, SimInstant)> = self
            .requests
            .iter()
            .map(|&(id, spec)| {
                let (e, l) = spec.interval(horizon);
                (id, e, l)
            })
            .collect();
        intervals.sort_by_key(|&(_, _, latest)| latest);
        let mut wakeups: Vec<Wakeup> = Vec::new();
        let mut covered = vec![false; intervals.len()];
        for i in 0..intervals.len() {
            if covered[i] {
                continue;
            }
            let point = intervals[i].2;
            let mut ids = Vec::new();
            for (j, &(id, earliest, latest)) in intervals.iter().enumerate() {
                if !covered[j] && earliest <= point && point <= latest {
                    covered[j] = true;
                    ids.push(id);
                }
            }
            wakeups.push(Wakeup { at: point, ids });
        }
        wakeups.sort_by_key(|w| w.at);
        wakeups
    }

    /// Wakeups needed without coalescing (one per request at its
    /// earliest/exact time) — the baseline the ablation compares against.
    pub fn naive_wakeup_count(&self) -> usize {
        let mut times: Vec<u64> = self
            .requests
            .iter()
            .map(|&(_, spec)| match spec {
                TimeSpec::Exact(t) => t.as_nanos(),
                TimeSpec::Window { earliest, .. } => earliest.as_nanos(),
                TimeSpec::AnyTimeAfter(t) => t.as_nanos(),
            })
            .collect();
        times.sort_unstable();
        times.dedup();
        times.len()
    }
}

/// A loose periodic planner: "every 5 minutes, on average over an hour".
///
/// Each cycle gets a window around the ideal grid point, so firings can
/// be batched with other work while the long-run average rate holds.
#[derive(Debug, Clone)]
pub struct AverageRate {
    base: SimInstant,
    period: SimDuration,
    /// Allowed deviation as a fraction of the period (e.g. 0.3).
    tolerance: f64,
    cycles: u64,
}

impl AverageRate {
    /// Creates a planner anchored at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not in `[0, 1)` or the period is zero.
    pub fn new(base: SimInstant, period: SimDuration, tolerance: f64) -> Self {
        assert!((0.0..1.0).contains(&tolerance));
        assert!(!period.is_zero());
        AverageRate {
            base,
            period,
            tolerance,
            cycles: 0,
        }
    }

    /// The window for the next cycle, anchored to the ideal grid (not to
    /// actual firing times, so error does not accumulate).
    pub fn next_window(&mut self) -> TimeSpec {
        self.cycles += 1;
        let ideal = self.base + self.period * self.cycles;
        let slack = self.period.mul_f64(self.tolerance);
        TimeSpec::Window {
            earliest: ideal - slack,
            latest: ideal + slack,
        }
    }

    /// Cycles planned so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn at(s: u64) -> SimInstant {
        SimInstant::BOOT + SimDuration::from_secs(s)
    }

    #[test]
    fn loose_requests_coalesce_to_one_wakeup() {
        let mut c = Coalescer::new();
        c.add(
            1,
            TimeSpec::Window {
                earliest: at(10),
                latest: at(100),
            },
        );
        c.add(
            2,
            TimeSpec::Window {
                earliest: at(50),
                latest: at(90),
            },
        );
        c.add(3, TimeSpec::AnyTimeAfter(at(20)));
        let plan = c.plan(at(1000));
        assert_eq!(plan.len(), 1, "plan = {plan:?}");
        assert_eq!(plan[0].ids.len(), 3);
        assert!(c.naive_wakeup_count() >= 3);
    }

    #[test]
    fn exact_requests_cannot_coalesce() {
        let mut c = Coalescer::new();
        c.add(1, TimeSpec::Exact(at(10)));
        c.add(2, TimeSpec::Exact(at(20)));
        c.add(3, TimeSpec::Exact(at(30)));
        assert_eq!(c.plan(at(1000)).len(), 3);
    }

    #[test]
    fn window_wakeup_respects_bounds() {
        let mut c = Coalescer::new();
        c.add(
            1,
            TimeSpec::Window {
                earliest: at(10),
                latest: at(20),
            },
        );
        c.add(
            2,
            TimeSpec::Window {
                earliest: at(30),
                latest: at(40),
            },
        );
        let plan = c.plan(at(1000));
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].at, at(20));
        assert_eq!(plan[1].at, at(40));
    }

    #[test]
    fn average_rate_stays_on_grid() {
        let mut ar = AverageRate::new(at(0), SimDuration::from_secs(300), 0.3);
        let w1 = ar.next_window();
        let w5 = {
            ar.next_window();
            ar.next_window();
            ar.next_window();
            ar.next_window()
        };
        match (w1, w5) {
            (
                TimeSpec::Window {
                    earliest: e1,
                    latest: l1,
                },
                TimeSpec::Window {
                    earliest: e5,
                    latest: l5,
                },
            ) => {
                assert_eq!(e1, at(300) - SimDuration::from_secs(90));
                assert_eq!(l1, at(300) + SimDuration::from_secs(90));
                // Fifth cycle is anchored at 5 × period: no drift.
                assert_eq!(e5, at(1500) - SimDuration::from_secs(90));
                assert_eq!(l5, at(1500) + SimDuration::from_secs(90));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Brute-force minimal piercing for small cases (bitmask over the
    /// candidate points; optimal points can always be chosen among
    /// interval endpoints).
    fn brute_force_min(intervals: &[(u64, u64)]) -> usize {
        let mut points: Vec<u64> = intervals.iter().flat_map(|&(a, b)| [a, b]).collect();
        points.sort_unstable();
        points.dedup();
        let n = points.len();
        assert!(n <= 16, "brute force limited to small cases");
        let mut best = n;
        for mask in 0u32..(1 << n) {
            let size = mask.count_ones() as usize;
            if size >= best {
                continue;
            }
            let chosen: Vec<u64> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| points[i])
                .collect();
            if intervals
                .iter()
                .all(|&(a, b)| chosen.iter().any(|&p| a <= p && p <= b))
            {
                best = size;
            }
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn every_request_is_served_within_its_window(
            windows in proptest::collection::vec((0u64..1000, 0u64..100), 1..30)
        ) {
            let mut c = Coalescer::new();
            for (i, &(start, len)) in windows.iter().enumerate() {
                c.add(i as u64, TimeSpec::Window {
                    earliest: at(start),
                    latest: at(start + len),
                });
            }
            let plan = c.plan(at(10_000));
            // Every id appears exactly once.
            let mut served: Vec<u64> = plan.iter().flat_map(|w| w.ids.clone()).collect();
            served.sort_unstable();
            prop_assert_eq!(served, (0..windows.len() as u64).collect::<Vec<_>>());
            // And within its window.
            for w in &plan {
                for &id in &w.ids {
                    let (start, len) = windows[id as usize];
                    prop_assert!(w.at >= at(start) && w.at <= at(start + len));
                }
            }
        }

        #[test]
        fn greedy_matches_brute_force_minimum(
            windows in proptest::collection::vec((0u64..40, 0u64..15), 1..6)
        ) {
            let mut c = Coalescer::new();
            let mut raw = Vec::new();
            for (i, &(start, len)) in windows.iter().enumerate() {
                c.add(i as u64, TimeSpec::Window {
                    earliest: at(start),
                    latest: at(start + len),
                });
                raw.push((start, start + len));
            }
            let plan = c.plan(at(10_000));
            prop_assert_eq!(plan.len(), brute_force_min(&raw));
        }
    }
}
