//! Streaming quantile estimation (the P² algorithm).
//!
//! The adaptive-timeout proposal needs "the distribution of wait-times
//! for each timer object" learned online with O(1) memory — a kernel
//! cannot buffer every observation. P² (Jain & Chlamtac, 1985) maintains
//! five markers whose heights converge to the target quantile; it is the
//! standard choice for embedded quantile tracking.

/// A streaming estimator of a single quantile.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    /// The target quantile in (0, 1).
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based observation ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Position increments.
    dn: [f64; 5],
    /// Observations seen.
    count: u64,
    /// Initial buffer until five samples arrive.
    init: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1), got {p}");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
                for (i, &v) in self.init.iter().enumerate() {
                    self.q[i] = v;
                }
            }
            return;
        }
        // Find the cell containing x, adjusting extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if self.q[i] <= x && x < self.q[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }
        // Adjust interior markers via parabolic (or linear) interpolation.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let s = d.signum();
                let qp = self.parabolic(i, s);
                if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    self.q[i] = qp;
                } else {
                    self.q[i] = self.linear(i, s);
                }
                self.n[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + s / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + s) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - s) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = (i as f64 + s) as usize;
        self.q[i] + s * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// The current quantile estimate.
    ///
    /// Before five observations, falls back to the max seen (conservative
    /// for timeout use).
    pub fn estimate(&self) -> f64 {
        if self.init.len() < 5 {
            return self
                .init
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
                .max(0.0);
        }
        self.q[2]
    }

    /// Resets the estimator (level-shift response).
    pub fn reset(&mut self) {
        *self = P2Quantile::new(self.p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use simtime::SimRng;

    fn exact_quantile(mut xs: Vec<f64>, p: f64) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((xs.len() as f64 - 1.0) * p).round() as usize;
        xs[idx]
    }

    #[test]
    fn uniform_median_converges() {
        let mut est = P2Quantile::new(0.5);
        let mut rng = SimRng::new(1);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.unit_f64()).collect();
        for &x in &xs {
            est.observe(x);
        }
        assert!((est.estimate() - 0.5).abs() < 0.01, "{}", est.estimate());
    }

    #[test]
    fn p99_of_exponential() {
        let mut est = P2Quantile::new(0.99);
        let mut rng = SimRng::new(2);
        let xs: Vec<f64> = (0..100_000).map(|_| -rng.unit_f64_open().ln()).collect();
        for &x in &xs {
            est.observe(x);
        }
        let exact = exact_quantile(xs, 0.99);
        let rel = (est.estimate() - exact).abs() / exact;
        assert!(rel < 0.08, "est {} vs exact {exact}", est.estimate());
    }

    #[test]
    fn few_samples_fall_back_to_max() {
        let mut est = P2Quantile::new(0.9);
        est.observe(3.0);
        est.observe(7.0);
        assert_eq!(est.estimate(), 7.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut est = P2Quantile::new(0.5);
        for i in 0..100 {
            est.observe(i as f64);
        }
        est.reset();
        assert_eq!(est.count(), 0);
        est.observe(42.0);
        assert_eq!(est.estimate(), 42.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn estimate_within_observed_range(
            xs in proptest::collection::vec(0.0f64..1e6, 5..500),
            p in 0.05f64..0.95,
        ) {
            let mut est = P2Quantile::new(p);
            for &x in &xs {
                est.observe(x);
            }
            let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let e = est.estimate();
            prop_assert!(e >= min - 1e-9 && e <= max + 1e-9, "{e} not in [{min},{max}]");
        }

        #[test]
        fn large_sample_accuracy(seed in 0u64..1000) {
            let mut rng = SimRng::new(seed);
            let mut est = P2Quantile::new(0.9);
            let xs: Vec<f64> = (0..20_000).map(|_| rng.unit_f64()).collect();
            for &x in &xs {
                est.observe(x);
            }
            prop_assert!((est.estimate() - 0.9).abs() < 0.03);
        }
    }
}
