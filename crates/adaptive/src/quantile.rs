//! Streaming quantile estimation (the P² algorithm).
//!
//! The adaptive-timeout proposal needs "the distribution of wait-times
//! for each timer object" learned online with O(1) memory — a kernel
//! cannot buffer every observation. P² (Jain & Chlamtac, 1985) maintains
//! five markers whose heights converge to the target quantile; it is the
//! standard choice for embedded quantile tracking.

/// A streaming estimator of a single quantile.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    /// The target quantile in (0, 1).
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based observation ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Position increments.
    dn: [f64; 5],
    /// Observations seen.
    count: u64,
    /// Initial buffer until five samples arrive.
    init: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1), got {p}");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
                for (i, &v) in self.init.iter().enumerate() {
                    self.q[i] = v;
                }
            }
            return;
        }
        // Find the cell containing x, adjusting extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if self.q[i] <= x && x < self.q[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }
        // Adjust interior markers via parabolic (or linear) interpolation.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let s = d.signum();
                let qp = self.parabolic(i, s);
                // Duplicate observations can collapse marker heights; a
                // parabolic step over a degenerate gap must be rejected in
                // favour of the (guarded) linear step, and a non-finite
                // result must never be stored.
                let next = if qp.is_finite() && self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, s)
                };
                if next.is_finite() {
                    self.q[i] = next;
                }
                self.n[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        // The adjustment guard only constrains the marker gap in the move
        // direction; the opposite-side gap can reach zero when positions
        // collide, which would divide by zero below.
        if n[i + 1] - n[i] < 1.0 || n[i] - n[i - 1] < 1.0 {
            return f64::NAN;
        }
        q[i] + s / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + s) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - s) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = (i as f64 + s) as usize;
        let gap = self.n[j] - self.n[i];
        if gap.abs() < 1.0 {
            // Collided marker positions: no room to move the height.
            return self.q[i];
        }
        self.q[i] + s * (self.q[j] - self.q[i]) / gap
    }

    /// The current quantile estimate.
    ///
    /// Before five observations, falls back to the max seen (conservative
    /// for timeout use); zero when nothing has been observed.
    pub fn estimate(&self) -> f64 {
        if self.init.len() < 5 {
            // NB: the max must be reported even when every sample is
            // negative — clamping to zero here would report a value that
            // was never observed.
            return self
                .init
                .iter()
                .copied()
                .fold(None, |acc: Option<f64>, x| {
                    Some(acc.map_or(x, |m| m.max(x)))
                })
                .unwrap_or(0.0);
        }
        self.q[2]
    }

    /// Resets the estimator (level-shift response).
    pub fn reset(&mut self) {
        *self = P2Quantile::new(self.p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use simtime::SimRng;

    fn exact_quantile(mut xs: Vec<f64>, p: f64) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((xs.len() as f64 - 1.0) * p).round() as usize;
        xs[idx]
    }

    #[test]
    fn uniform_median_converges() {
        let mut est = P2Quantile::new(0.5);
        let mut rng = SimRng::new(1);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.unit_f64()).collect();
        for &x in &xs {
            est.observe(x);
        }
        assert!((est.estimate() - 0.5).abs() < 0.01, "{}", est.estimate());
    }

    #[test]
    fn p99_of_exponential() {
        let mut est = P2Quantile::new(0.99);
        let mut rng = SimRng::new(2);
        let xs: Vec<f64> = (0..100_000).map(|_| -rng.unit_f64_open().ln()).collect();
        for &x in &xs {
            est.observe(x);
        }
        let exact = exact_quantile(xs, 0.99);
        let rel = (est.estimate() - exact).abs() / exact;
        assert!(rel < 0.08, "est {} vs exact {exact}", est.estimate());
    }

    #[test]
    fn few_samples_fall_back_to_max() {
        let mut est = P2Quantile::new(0.9);
        est.observe(3.0);
        est.observe(7.0);
        assert_eq!(est.estimate(), 7.0);
    }

    #[test]
    fn few_negative_samples_report_their_max() {
        // Regression: the under-5-samples fallback clamped the max to
        // zero, reporting an estimate that was never observed.
        let mut est = P2Quantile::new(0.9);
        est.observe(-5.0);
        est.observe(-2.0);
        assert_eq!(est.estimate(), -2.0);
        let mut single = P2Quantile::new(0.5);
        single.observe(-0.25);
        assert_eq!(single.estimate(), -0.25);
    }

    #[test]
    fn no_samples_estimate_is_zero() {
        assert_eq!(P2Quantile::new(0.5).estimate(), 0.0);
    }

    #[test]
    fn constant_stream_estimates_the_constant_exactly() {
        // Regression: duplicate observations collapse marker heights; the
        // estimate must stay exactly at the constant and never go NaN.
        let mut est = P2Quantile::new(0.75);
        for _ in 0..10_000 {
            est.observe(4.25);
        }
        assert_eq!(est.estimate(), 4.25);
    }

    #[test]
    fn duplicate_heavy_stream_stays_finite_and_in_range() {
        // Regression: long runs of duplicates drive marker positions
        // toward each other; the parabolic update must never divide by a
        // zero marker gap (previously possible on the unguarded side).
        for p in [0.1, 0.5, 0.9, 0.99] {
            let mut est = P2Quantile::new(p);
            for i in 0..5_000u64 {
                // 90 % duplicates of two values, 10 % spread.
                let x = match i % 10 {
                    0 => i as f64 / 100.0,
                    1..=5 => 1.0,
                    _ => 2.0,
                };
                est.observe(x);
                let e = est.estimate();
                assert!(e.is_finite(), "estimate went non-finite at i={i} p={p}");
                assert!((0.0..=50.0).contains(&e), "estimate {e} out of range");
            }
        }
    }

    #[test]
    fn two_value_stream_estimate_is_exact_at_extremes() {
        // With only the values {1, 2} observed, any quantile estimate
        // must lie inside [1, 2].
        let mut est = P2Quantile::new(0.5);
        for i in 0..1_000 {
            est.observe(if i % 2 == 0 { 1.0 } else { 2.0 });
        }
        let e = est.estimate();
        assert!((1.0..=2.0).contains(&e), "{e}");
    }

    #[test]
    fn reset_clears_state() {
        let mut est = P2Quantile::new(0.5);
        for i in 0..100 {
            est.observe(i as f64);
        }
        est.reset();
        assert_eq!(est.count(), 0);
        est.observe(42.0);
        assert_eq!(est.estimate(), 42.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn estimate_within_observed_range(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..500),
            p in 0.05f64..0.95,
        ) {
            let mut est = P2Quantile::new(p);
            for &x in &xs {
                est.observe(x);
            }
            let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let e = est.estimate();
            prop_assert!(e >= min - 1e-9 && e <= max + 1e-9, "{e} not in [{min},{max}]");
        }

        #[test]
        fn large_sample_accuracy(seed in 0u64..1000) {
            let mut rng = SimRng::new(seed);
            let mut est = P2Quantile::new(0.9);
            let xs: Vec<f64> = (0..20_000).map(|_| rng.unit_f64()).collect();
            for &x in &xs {
                est.observe(x);
            }
            prop_assert!((est.estimate() - 0.9).abs() < 0.03);
        }
    }
}
