//! The Jacobson/Karels RTT estimator — the paper's canonical adaptive
//! timer (Section 5.1's TCP example).
//!
//! "TCP … constantly maintains a reasonable value for its retransmission
//! timeout that is based on network conditions. It monitors the mean and
//! variance of round-trip times and uses these to adjust the timeout
//! value. When packets are lost or delayed, TCP … applies an exponential
//! backoff algorithm."

use simtime::SimDuration;

use crate::backoff::ExponentialBackoff;

/// A smoothed RTT / RTO estimator with Karn's rule and backoff.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    /// Smoothed RTT, seconds.
    srtt: Option<f64>,
    /// Mean deviation, seconds.
    rttvar: f64,
    /// Bounds on the computed RTO.
    min_rto: SimDuration,
    max_rto: SimDuration,
    backoff: ExponentialBackoff,
    /// `true` while an outstanding segment was retransmitted (Karn's
    /// rule: its ACK must not produce an RTT sample).
    retransmitted: bool,
}

impl RttEstimator {
    /// Creates an estimator with TCP's classical bounds (200 ms – 120 s)
    /// and 3 s initial timeout.
    pub fn new() -> Self {
        RttEstimator::with_bounds(
            SimDuration::from_millis(200),
            SimDuration::from_secs(120),
            SimDuration::from_secs(3),
        )
    }

    /// Creates an estimator with explicit bounds and initial RTO.
    pub fn with_bounds(min_rto: SimDuration, max_rto: SimDuration, initial: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: 0.0,
            min_rto,
            max_rto,
            backoff: ExponentialBackoff::new(initial, 2.0, max_rto),
            retransmitted: false,
        }
    }

    /// The smoothed RTT, if any sample has arrived.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt.map(SimDuration::from_secs_f64)
    }

    /// Records an ACK. `rtt` is the measured sample; it is ignored if the
    /// segment had been retransmitted (Karn's rule). The backed-off RTO
    /// persists until a *valid* sample arrives (RFC 6298 §5.7) — without
    /// this, a sustained RTT shift can lock the estimator into a
    /// retransmit/discard cycle in which it never learns the new regime.
    pub fn on_ack(&mut self, rtt: SimDuration) {
        if !self.retransmitted {
            let r = rtt.as_secs_f64();
            match self.srtt {
                None => {
                    self.srtt = Some(r);
                    self.rttvar = r / 2.0;
                }
                Some(srtt) => {
                    let err = r - srtt;
                    self.srtt = Some(srtt + err / 8.0);
                    self.rttvar += (err.abs() - self.rttvar) / 4.0;
                }
            }
            self.backoff.reset_to(self.base_rto());
        }
        self.retransmitted = false;
    }

    /// Records a retransmission timeout firing: backs off exponentially.
    pub fn on_timeout(&mut self) -> SimDuration {
        self.retransmitted = true;
        self.backoff.advance()
    }

    /// The RTO from the current estimates, before backoff.
    fn base_rto(&self) -> SimDuration {
        match self.srtt {
            None => SimDuration::from_secs(3),
            Some(srtt) => {
                let rto = SimDuration::from_secs_f64(srtt + 4.0 * self.rttvar);
                rto.max(self.min_rto).min(self.max_rto)
            }
        }
    }

    /// The current retransmission timeout (with any active backoff).
    pub fn rto(&self) -> SimDuration {
        self.backoff.current().max(self.min_rto).min(self.max_rto)
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_is_3s() {
        let e = RttEstimator::new();
        assert_eq!(e.rto(), SimDuration::from_secs(3));
    }

    #[test]
    fn steady_samples_reach_floor() {
        let mut e = RttEstimator::new();
        for _ in 0..100 {
            e.on_ack(SimDuration::from_millis(10));
        }
        assert_eq!(e.rto(), SimDuration::from_millis(200));
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_secs_f64() - 0.010).abs() < 0.002);
    }

    #[test]
    fn variance_raises_rto() {
        let mut e = RttEstimator::new();
        for i in 0..200 {
            let rtt = if i % 2 == 0 { 20 } else { 400 };
            e.on_ack(SimDuration::from_millis(rtt));
        }
        assert!(e.rto() > SimDuration::from_millis(400));
    }

    #[test]
    fn timeouts_back_off_exponentially() {
        let mut e = RttEstimator::new();
        for _ in 0..50 {
            e.on_ack(SimDuration::from_millis(50));
        }
        let r0 = e.rto();
        let r1 = e.on_timeout();
        let r2 = e.on_timeout();
        assert!(r1 >= r0.mul_f64(1.9));
        assert!(r2 >= r1.mul_f64(1.9));
        // ACK resets the backoff (a fresh, non-retransmitted ACK first).
        e.on_ack(SimDuration::from_millis(50)); // Karn: no sample.
        e.on_ack(SimDuration::from_millis(50));
        assert!(e.rto() <= r0.mul_f64(1.1));
    }

    #[test]
    fn karns_rule_ignores_retransmitted_samples() {
        let mut e = RttEstimator::new();
        for _ in 0..50 {
            e.on_ack(SimDuration::from_millis(10));
        }
        let srtt_before = e.srtt().unwrap();
        e.on_timeout();
        // A wildly wrong sample after retransmission is discarded.
        e.on_ack(SimDuration::from_secs(10));
        let srtt_after = e.srtt().unwrap();
        assert_eq!(srtt_before, srtt_after);
        // The next ACK counts again.
        e.on_ack(SimDuration::from_millis(30));
        assert!(e.srtt().unwrap() > srtt_before);
    }

    #[test]
    fn rto_capped_at_max() {
        let mut e = RttEstimator::new();
        for _ in 0..20 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(120));
    }
}
