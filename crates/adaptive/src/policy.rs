//! The adaptive-timeout execution policy (Section 5's "what if").
//!
//! The paper measures kernels whose timeouts are fixed, round, human
//! constants; Section 5 argues they should be *learned*. The policy knob
//! selects, for one experiment run, whether the simulated subsystems keep
//! their historical constants or drive the same timers from the learned
//! distributions in this crate:
//!
//! * [`AdaptivePolicy::Off`] — the measured kernels exactly as shipped.
//!   The default; no adaptive state is consulted.
//! * [`AdaptivePolicy::Fixed`] — the full adaptive plumbing is active
//!   (estimators are fed, counters tick) but every timeout decision is
//!   clamped to the historical constant. This degenerate mode must be
//!   byte-identical to `Off` — it proves the plumbing inert when
//!   disabled, the same way a faulted run with a zero-width episode must
//!   equal an unfaulted one.
//! * [`AdaptivePolicy::Learned`] — timeouts come from the learned
//!   distributions (§5.1's quantile estimator with a safety margin),
//!   clamped between a floor and the historical constant.
//!
//! Because learned decisions are fed exclusively from workload-level
//! observations (RTT samples, activity gaps) — never from timer-queue
//! internals — a learned run stays byte-identical across wheel backends,
//! shard counts and analysis thread counts, preserving the equivalence
//! matrix of the fixed modes.

/// Which timeout policy an experiment runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AdaptivePolicy {
    /// Historical fixed constants; adaptive plumbing not consulted.
    #[default]
    Off,
    /// Plumbing active, decisions clamped to the fixed constants
    /// (degenerate mode — must reproduce `Off` byte-identically).
    Fixed,
    /// Timeouts driven by the learned distributions.
    Learned,
}

impl AdaptivePolicy {
    /// Canonical lowercase name (used in spec labels and CLI flags).
    pub const fn label(self) -> &'static str {
        match self {
            AdaptivePolicy::Off => "off",
            AdaptivePolicy::Fixed => "fixed",
            AdaptivePolicy::Learned => "learned",
        }
    }

    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(AdaptivePolicy::Off),
            "fixed" => Some(AdaptivePolicy::Fixed),
            "learned" => Some(AdaptivePolicy::Learned),
            _ => None,
        }
    }

    /// Whether learned values may replace the fixed constants.
    pub const fn is_learned(self) -> bool {
        matches!(self, AdaptivePolicy::Learned)
    }

    /// Whether the adaptive plumbing (estimator feeding, counters) is
    /// active at all.
    pub const fn is_active(self) -> bool {
        !matches!(self, AdaptivePolicy::Off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for p in [
            AdaptivePolicy::Off,
            AdaptivePolicy::Fixed,
            AdaptivePolicy::Learned,
        ] {
            assert_eq!(AdaptivePolicy::parse(p.label()), Some(p));
        }
        assert_eq!(AdaptivePolicy::parse("bogus"), None);
    }

    #[test]
    fn default_is_off() {
        assert_eq!(AdaptivePolicy::default(), AdaptivePolicy::Off);
        assert!(!AdaptivePolicy::Off.is_learned());
        assert!(!AdaptivePolicy::Fixed.is_learned());
        assert!(AdaptivePolicy::Learned.is_learned());
    }
}
