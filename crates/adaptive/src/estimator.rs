//! The adaptive timeout of Section 5.1.
//!
//! "Rather than specifying a willingness to wait for an (arbitrary) 30
//! seconds, the programmer should request to 'time out' once the system
//! is 99 % confident that a message will never be arriving. … The
//! confidence interval can be calculated by learning the distribution of
//! wait-times for each timer object."
//!
//! The estimator learns the wait-time distribution with a P² quantile
//! tracker and reports `quantile(confidence) × safety` as the timeout.
//! It also handles the paper's hard case: "sudden and long-lived level
//! shifts in latency will cause the whole learned distribution to shift"
//! (the LAN → WAN example) — a run of consecutive timeouts triggers a
//! reset plus temporary backoff so the estimator re-learns quickly
//! instead of timing out forever.

use simtime::SimDuration;

use crate::quantile::P2Quantile;

/// An adaptive timeout for one logical wait ("this RPC to that server").
#[derive(Debug, Clone)]
pub struct AdaptiveTimeout {
    quantile: P2Quantile,
    confidence: f64,
    safety: f64,
    /// Timeout floor and ceiling.
    floor: SimDuration,
    ceiling: SimDuration,
    /// Fallback before any samples (the legacy constant, e.g. 30 s).
    initial: SimDuration,
    /// Consecutive timeouts observed (level-shift detector).
    consecutive_timeouts: u32,
    /// Threshold of consecutive timeouts that triggers a relearn.
    shift_threshold: u32,
    /// Multiplier applied while relearning.
    backoff_factor: f64,
    /// Total level-shift resets performed.
    resets: u64,
    /// Samples required before the learned estimate replaces `initial`.
    warmup: u64,
}

impl AdaptiveTimeout {
    /// Creates an estimator at the given confidence (e.g. `0.99`), with
    /// `initial` as the timeout used before any samples arrive.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < confidence < 1`.
    pub fn new(confidence: f64, initial: SimDuration) -> Self {
        AdaptiveTimeout {
            quantile: P2Quantile::new(confidence),
            confidence,
            safety: 1.5,
            floor: SimDuration::from_millis(1),
            ceiling: SimDuration::from_secs(120),
            initial,
            consecutive_timeouts: 0,
            shift_threshold: 3,
            backoff_factor: 1.0,
            resets: 0,
            warmup: 1,
        }
    }

    /// Requires `warmup` samples before the learned estimate replaces the
    /// initial constant (the default of 1 keeps the historical "switch on
    /// first sample" behaviour).
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup.max(1);
        self
    }

    /// Overrides the safety multiplier applied to the learned quantile.
    pub fn with_safety(mut self, safety: f64) -> Self {
        self.safety = safety;
        self
    }

    /// Overrides the floor/ceiling clamp.
    pub fn with_bounds(mut self, floor: SimDuration, ceiling: SimDuration) -> Self {
        self.floor = floor;
        self.ceiling = ceiling;
        self
    }

    /// The confidence level.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Number of level-shift resets so far.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Number of completed-wait samples learned.
    pub fn samples(&self) -> u64 {
        self.quantile.count()
    }

    /// Whether enough samples have arrived for the learned estimate to
    /// replace the initial constant.
    pub fn is_warm(&self) -> bool {
        self.samples() >= self.warmup
    }

    /// Records a successful wait that completed after `waited`.
    pub fn observe_success(&mut self, waited: SimDuration) {
        self.quantile.observe(waited.as_secs_f64());
        self.consecutive_timeouts = 0;
        // Successful observations gradually unwind relearning backoff.
        if self.backoff_factor > 1.0 {
            self.backoff_factor = (self.backoff_factor * 0.7).max(1.0);
        }
    }

    /// Records that a wait hit the timeout without an answer.
    ///
    /// A short run of these is how failures *should* look; a long run
    /// means the environment shifted and the learned distribution is
    /// stale, so the estimator resets and temporarily lengthens its
    /// timeout to re-learn (§5.1's level-shift discussion).
    pub fn observe_timeout(&mut self) {
        self.consecutive_timeouts += 1;
        if self.consecutive_timeouts >= self.shift_threshold {
            self.quantile.reset();
            self.consecutive_timeouts = 0;
            self.backoff_factor = (self.backoff_factor * 2.0).min(16.0);
            self.resets += 1;
        }
    }

    /// The current timeout: `quantile(confidence) × safety × backoff`,
    /// clamped, or the initial constant before any samples.
    pub fn timeout(&self) -> SimDuration {
        if self.samples() < self.warmup {
            return self.initial.mul_f64(self.backoff_factor).min(self.ceiling);
        }
        let learned = SimDuration::from_secs_f64(
            self.quantile.estimate() * self.safety * self.backoff_factor,
        );
        learned.max(self.floor).min(self.ceiling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::{LogNormal, Sample, SimRng};

    #[test]
    fn starts_at_initial() {
        let est = AdaptiveTimeout::new(0.99, SimDuration::from_secs(30));
        assert_eq!(est.timeout(), SimDuration::from_secs(30));
    }

    #[test]
    fn learns_fast_network_beats_30s() {
        // The paper's motivating case: responses usually arrive ~130 ms,
        // yet the programmer waits 30 s. The adaptive timeout should
        // settle near the distribution tail — two orders of magnitude
        // below 30 s.
        let mut est = AdaptiveTimeout::new(0.99, SimDuration::from_secs(30));
        let dist = LogNormal::from_median(0.130, 0.3);
        let mut rng = SimRng::new(1);
        for _ in 0..5_000 {
            est.observe_success(dist.sample_duration(&mut rng));
        }
        let t = est.timeout();
        assert!(
            t < SimDuration::from_secs(1),
            "adaptive timeout {t} should be < 1 s"
        );
        assert!(
            t > SimDuration::from_millis(130),
            "timeout {t} must exceed the median"
        );
    }

    #[test]
    fn timeout_exceeds_most_samples() {
        let mut est = AdaptiveTimeout::new(0.99, SimDuration::from_secs(30));
        let dist = LogNormal::from_median(0.050, 0.4);
        let mut rng = SimRng::new(2);
        let mut samples = Vec::new();
        for _ in 0..20_000 {
            let s = dist.sample_duration(&mut rng);
            samples.push(s);
            est.observe_success(s);
        }
        let t = est.timeout();
        let below = samples.iter().filter(|&&s| s < t).count();
        let frac = below as f64 / samples.len() as f64;
        assert!(frac > 0.99, "spurious-timeout rate too high: {frac}");
    }

    #[test]
    fn level_shift_triggers_relearn() {
        let mut est = AdaptiveTimeout::new(0.95, SimDuration::from_secs(30));
        for _ in 0..1_000 {
            est.observe_success(SimDuration::from_millis(1));
        }
        let lan_timeout = est.timeout();
        assert!(lan_timeout < SimDuration::from_millis(100));
        // The user moves to a WAN: every wait now exceeds the learned
        // timeout. After the shift threshold, the estimator resets and
        // backs off instead of timing out forever.
        est.observe_timeout();
        est.observe_timeout();
        assert_eq!(est.resets(), 0);
        est.observe_timeout();
        assert_eq!(est.resets(), 1);
        let relearn_timeout = est.timeout();
        assert!(
            relearn_timeout > lan_timeout,
            "{relearn_timeout} vs {lan_timeout}"
        );
        // New WAN samples re-converge.
        for _ in 0..1_000 {
            est.observe_success(SimDuration::from_millis(130));
        }
        let wan = est.timeout();
        assert!(wan > SimDuration::from_millis(130));
        assert!(wan < SimDuration::from_secs(2));
    }

    #[test]
    fn clamps_to_bounds() {
        let mut est = AdaptiveTimeout::new(0.5, SimDuration::from_secs(30))
            .with_bounds(SimDuration::from_millis(200), SimDuration::from_secs(5));
        for _ in 0..100 {
            est.observe_success(SimDuration::from_micros(10));
        }
        assert_eq!(est.timeout(), SimDuration::from_millis(200));
        for _ in 0..10_000 {
            est.observe_success(SimDuration::from_secs(100));
        }
        assert_eq!(est.timeout(), SimDuration::from_secs(5));
    }
}
