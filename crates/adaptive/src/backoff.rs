//! Exponential backoff.
//!
//! The retry discipline behind TCP retransmission and the paper's SunRPC
//! example: "many implementations respond to refused connections with an
//! exponential backoff which retries 7 times, doubling the initial 500 ms
//! timeout each iteration. Thus, recovering from a typing error can take
//! over a minute!" (§2.2.2).

use simtime::SimDuration;

/// A capped exponential backoff sequence.
#[derive(Debug, Clone)]
pub struct ExponentialBackoff {
    initial: SimDuration,
    factor: f64,
    cap: SimDuration,
    current: SimDuration,
    steps: u32,
}

impl ExponentialBackoff {
    /// Creates a backoff starting at `initial`, multiplying by `factor`
    /// each step, capped at `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1`.
    pub fn new(initial: SimDuration, factor: f64, cap: SimDuration) -> Self {
        assert!(factor >= 1.0, "backoff factor must be >= 1, got {factor}");
        let initial = initial.min(cap);
        ExponentialBackoff {
            initial,
            factor,
            cap,
            current: initial,
            steps: 0,
        }
    }

    /// The SunRPC discipline from the paper: 500 ms initial, doubling.
    pub fn sunrpc() -> Self {
        ExponentialBackoff::new(
            SimDuration::from_millis(500),
            2.0,
            SimDuration::from_secs(64),
        )
    }

    /// The current value without advancing.
    pub fn current(&self) -> SimDuration {
        self.current
    }

    /// Steps taken since the last reset.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Advances the backoff, returning the *new* value.
    ///
    /// Once `current` has reached `cap` the value is saturated: further
    /// advances return exactly `cap` (only the step counter moves). The
    /// growth step is also clamped to be monotone — the f64 round-trip in
    /// `mul_f64` must never walk the value backwards for `factor >= 1`.
    pub fn advance(&mut self) -> SimDuration {
        self.steps = self.steps.saturating_add(1);
        if self.current >= self.cap {
            self.current = self.cap;
            return self.current;
        }
        self.current = self
            .current
            .mul_f64(self.factor)
            .max(self.current)
            .min(self.cap);
        self.current
    }

    /// Resets to the initial value.
    pub fn reset(&mut self) {
        self.current = self.initial;
        self.steps = 0;
    }

    /// Resets to a new base value (adaptive re-anchoring).
    pub fn reset_to(&mut self, base: SimDuration) {
        self.current = base.min(self.cap);
        self.steps = 0;
    }

    /// Total time consumed by `n` attempts that each wait out the current
    /// value before advancing (the §2.2.2 recovery-latency calculation).
    ///
    /// Saturating: once the sequence stops growing (the cap is reached,
    /// or `factor` rounds to a no-op) the remaining attempts are summed
    /// in closed form, so large `n` neither overflows nor loops `n`
    /// times.
    pub fn total_after(initial: SimDuration, factor: f64, cap: SimDuration, n: u32) -> SimDuration {
        let mut b = ExponentialBackoff::new(initial, factor, cap);
        let mut total = SimDuration::ZERO;
        let mut left = n as u64;
        while left > 0 {
            let cur = b.current();
            if b.advance() == cur {
                // Saturated: every remaining wait is `cur`.
                let rest = (cur.as_nanos() as u128).saturating_mul(left as u128);
                let rest = SimDuration::from_nanos(u64::try_from(rest).unwrap_or(u64::MAX));
                return total.saturating_add(rest);
            }
            total = total.saturating_add(cur);
            left -= 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_and_caps() {
        let mut b = ExponentialBackoff::new(
            SimDuration::from_millis(100),
            2.0,
            SimDuration::from_millis(500),
        );
        assert_eq!(b.current(), SimDuration::from_millis(100));
        assert_eq!(b.advance(), SimDuration::from_millis(200));
        assert_eq!(b.advance(), SimDuration::from_millis(400));
        assert_eq!(b.advance(), SimDuration::from_millis(500));
        assert_eq!(b.advance(), SimDuration::from_millis(500));
        assert_eq!(b.steps(), 4);
    }

    #[test]
    fn sunrpc_seven_retries_take_over_a_minute() {
        // 0.5 + 1 + 2 + 4 + 8 + 16 + 32 = 63.5 s — the paper's "over a
        // minute" number.
        let total = ExponentialBackoff::total_after(
            SimDuration::from_millis(500),
            2.0,
            SimDuration::from_secs(64),
            7,
        );
        assert_eq!(total, SimDuration::from_millis(63_500));
        assert!(total > SimDuration::from_secs(60));
    }

    #[test]
    fn reset_restores_initial() {
        let mut b = ExponentialBackoff::sunrpc();
        b.advance();
        b.advance();
        b.reset();
        assert_eq!(b.current(), SimDuration::from_millis(500));
        assert_eq!(b.steps(), 0);
    }

    #[test]
    fn advance_is_idempotent_at_the_cap() {
        // Regression: once the cap is reached, further advances must
        // return exactly the cap (no f64 round-trip wobble).
        let cap = SimDuration::from_nanos(63_999_999_999);
        let mut b = ExponentialBackoff::new(SimDuration::from_millis(500), 2.0, cap);
        for _ in 0..10 {
            b.advance();
        }
        assert_eq!(b.current(), cap);
        for _ in 0..100 {
            assert_eq!(b.advance(), cap);
        }
        assert_eq!(b.steps(), 110);
    }

    #[test]
    fn initial_above_cap_is_clamped() {
        let b =
            ExponentialBackoff::new(SimDuration::from_secs(100), 2.0, SimDuration::from_secs(64));
        assert_eq!(b.current(), SimDuration::from_secs(64));
    }

    #[test]
    fn total_after_does_not_overflow_for_large_n() {
        // Regression: the per-attempt loop summed u64 nanoseconds without
        // saturation — u32::MAX attempts at a 64 s cap overflowed (and
        // walked the loop four billion times).
        let total = ExponentialBackoff::total_after(
            SimDuration::from_millis(500),
            2.0,
            SimDuration::from_secs(64),
            u32::MAX,
        );
        assert_eq!(total, SimDuration::MAX);
    }

    #[test]
    fn total_after_handles_factor_one() {
        // factor == 1 never reaches the cap; the closed form must still
        // terminate and sum n identical waits.
        let total = ExponentialBackoff::total_after(
            SimDuration::from_millis(250),
            1.0,
            SimDuration::from_secs(64),
            8,
        );
        assert_eq!(total, SimDuration::from_secs(2));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        #[test]
        fn advance_is_monotone_and_capped(
            initial_ms in 1u64..10_000,
            factor in 1.0f64..4.0,
            cap_ms in 1u64..100_000,
            steps in 1usize..64,
        ) {
            let cap = SimDuration::from_millis(cap_ms);
            let mut b = ExponentialBackoff::new(SimDuration::from_millis(initial_ms), factor, cap);
            let mut prev = b.current();
            proptest::prop_assert!(prev <= cap);
            for _ in 0..steps {
                let next = b.advance();
                proptest::prop_assert!(next >= prev, "backoff walked backwards: {prev} -> {next}");
                proptest::prop_assert!(next <= cap);
                prev = next;
            }
        }

        #[test]
        fn total_after_matches_reference_loop(
            initial_ms in 1u64..5_000,
            factor in 1.0f64..3.0,
            cap_ms in 1u64..60_000,
            n in 0u32..40,
        ) {
            let initial = SimDuration::from_millis(initial_ms);
            let cap = SimDuration::from_millis(cap_ms);
            let mut b = ExponentialBackoff::new(initial, factor, cap);
            let mut reference = SimDuration::ZERO;
            for _ in 0..n {
                reference = reference.saturating_add(b.current());
                b.advance();
            }
            proptest::prop_assert_eq!(
                ExponentialBackoff::total_after(initial, factor, cap, n),
                reference
            );
        }

        #[test]
        fn total_after_is_monotone_in_n(
            initial_ms in 1u64..5_000,
            factor in 1.0f64..3.0,
            cap_ms in 1u64..60_000,
            n in 0u32..100,
        ) {
            let initial = SimDuration::from_millis(initial_ms);
            let cap = SimDuration::from_millis(cap_ms);
            let a = ExponentialBackoff::total_after(initial, factor, cap, n);
            let b = ExponentialBackoff::total_after(initial, factor, cap, n + 1);
            proptest::prop_assert!(b >= a);
        }
    }
}
