//! Exponential backoff.
//!
//! The retry discipline behind TCP retransmission and the paper's SunRPC
//! example: "many implementations respond to refused connections with an
//! exponential backoff which retries 7 times, doubling the initial 500 ms
//! timeout each iteration. Thus, recovering from a typing error can take
//! over a minute!" (§2.2.2).

use simtime::SimDuration;

/// A capped exponential backoff sequence.
#[derive(Debug, Clone)]
pub struct ExponentialBackoff {
    initial: SimDuration,
    factor: f64,
    cap: SimDuration,
    current: SimDuration,
    steps: u32,
}

impl ExponentialBackoff {
    /// Creates a backoff starting at `initial`, multiplying by `factor`
    /// each step, capped at `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1`.
    pub fn new(initial: SimDuration, factor: f64, cap: SimDuration) -> Self {
        assert!(factor >= 1.0, "backoff factor must be >= 1, got {factor}");
        ExponentialBackoff {
            initial,
            factor,
            cap,
            current: initial,
            steps: 0,
        }
    }

    /// The SunRPC discipline from the paper: 500 ms initial, doubling.
    pub fn sunrpc() -> Self {
        ExponentialBackoff::new(
            SimDuration::from_millis(500),
            2.0,
            SimDuration::from_secs(64),
        )
    }

    /// The current value without advancing.
    pub fn current(&self) -> SimDuration {
        self.current
    }

    /// Steps taken since the last reset.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Advances the backoff, returning the *new* value.
    pub fn advance(&mut self) -> SimDuration {
        self.current = self.current.mul_f64(self.factor).min(self.cap);
        self.steps += 1;
        self.current
    }

    /// Resets to the initial value.
    pub fn reset(&mut self) {
        self.current = self.initial;
        self.steps = 0;
    }

    /// Resets to a new base value (adaptive re-anchoring).
    pub fn reset_to(&mut self, base: SimDuration) {
        self.current = base.min(self.cap);
        self.steps = 0;
    }

    /// Total time consumed by `n` attempts that each wait out the current
    /// value before advancing (the §2.2.2 recovery-latency calculation).
    pub fn total_after(initial: SimDuration, factor: f64, cap: SimDuration, n: u32) -> SimDuration {
        let mut b = ExponentialBackoff::new(initial, factor, cap);
        let mut total = SimDuration::ZERO;
        for _ in 0..n {
            total += b.current();
            b.advance();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_and_caps() {
        let mut b = ExponentialBackoff::new(
            SimDuration::from_millis(100),
            2.0,
            SimDuration::from_millis(500),
        );
        assert_eq!(b.current(), SimDuration::from_millis(100));
        assert_eq!(b.advance(), SimDuration::from_millis(200));
        assert_eq!(b.advance(), SimDuration::from_millis(400));
        assert_eq!(b.advance(), SimDuration::from_millis(500));
        assert_eq!(b.advance(), SimDuration::from_millis(500));
        assert_eq!(b.steps(), 4);
    }

    #[test]
    fn sunrpc_seven_retries_take_over_a_minute() {
        // 0.5 + 1 + 2 + 4 + 8 + 16 + 32 = 63.5 s — the paper's "over a
        // minute" number.
        let total = ExponentialBackoff::total_after(
            SimDuration::from_millis(500),
            2.0,
            SimDuration::from_secs(64),
            7,
        );
        assert_eq!(total, SimDuration::from_millis(63_500));
        assert!(total > SimDuration::from_secs(60));
    }

    #[test]
    fn reset_restores_initial() {
        let mut b = ExponentialBackoff::sunrpc();
        b.advance();
        b.advance();
        b.reset();
        assert_eq!(b.current(), SimDuration::from_millis(500));
        assert_eq!(b.steps(), 0);
    }
}
