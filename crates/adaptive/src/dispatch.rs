//! A timer-less application dispatcher (Section 5.5).
//!
//! "The timer interface, when used in these ways, is telling the kernel
//! which piece of code to run when. The kernel also has another subsystem
//! dedicated to implementing this type of policy: the CPU scheduler."
//! The paper's closing proposal is an application interface to the
//! scheduler that *subsumes* the timer interface: programs declare
//! intents (run this periodically / guard this scope / wake me after),
//! each with explicit precision, and one dispatcher computes the minimal
//! wakeup schedule that satisfies all of them — along the lines of
//! scheduler activations.
//!
//! [`Dispatcher`] implements that design over virtual time. Each of the
//! paper's §5.4 use cases becomes a declarative [`Intent`]; the
//! dispatcher batches compatible deadlines (via the same greedy interval
//! stabbing as [`crate::Coalescer`]) and reports how many hardware timer
//! programmings the unified view saves over one-timer-per-use.

use std::collections::HashMap;

use simtime::{SimDuration, SimInstant};

/// A declared scheduling intent — what to run, when, and how precisely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Intent {
    /// Run every `period`, with `slack` of acceptable deviation per tick
    /// (anchored to a drift-free grid).
    Periodic {
        /// The period.
        period: SimDuration,
        /// Acceptable deviation either side of each grid point.
        slack: SimDuration,
    },
    /// Fail-safe: fire at exactly `deadline` unless completed first.
    Timeout {
        /// The hard deadline.
        deadline: SimInstant,
    },
    /// Fire if not patted within `window` (deadline slides on activity).
    Watchdog {
        /// The inactivity window.
        window: SimDuration,
    },
    /// Run once, any time in `[after, after + slack]`.
    Delay {
        /// Earliest acceptable instant.
        after: SimInstant,
        /// How much later is still acceptable.
        slack: SimDuration,
    },
}

/// Identity of a registered intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntentId(pub u64);

/// One scheduled dispatch: the CPU wakes once and runs all of `fired`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dispatch {
    /// The wakeup instant.
    pub at: SimInstant,
    /// Intents served by this wakeup.
    pub fired: Vec<IntentId>,
}

#[derive(Debug, Clone, Copy)]
struct Registered {
    intent: Intent,
    /// For periodics: ticks delivered; for watchdogs: current deadline.
    ticks: u64,
    watchdog_deadline: Option<SimInstant>,
    registered_at: SimInstant,
}

/// The unified dispatcher.
#[derive(Debug, Default)]
pub struct Dispatcher {
    intents: HashMap<IntentId, Registered>,
    next_id: u64,
    now: SimInstant,
    /// Wakeups performed (each costs one hardware timer programming and
    /// one idle-exit).
    pub wakeups: u64,
    /// Intent firings delivered.
    pub deliveries: u64,
}

impl Dispatcher {
    /// Creates an empty dispatcher at boot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an intent, returning its id.
    pub fn register(&mut self, now: SimInstant, intent: Intent) -> IntentId {
        let id = IntentId(self.next_id);
        self.next_id += 1;
        let watchdog_deadline = match intent {
            Intent::Watchdog { window } => Some(now + window),
            _ => None,
        };
        self.intents.insert(
            id,
            Registered {
                intent,
                ticks: 0,
                watchdog_deadline,
                registered_at: now,
            },
        );
        id
    }

    /// Completes (cancels) an intent: the timeout's guarded operation
    /// finished, the delay is no longer wanted.
    pub fn complete(&mut self, id: IntentId) -> bool {
        self.intents.remove(&id).is_some()
    }

    /// The guarded code path executed: slide a watchdog's deadline.
    ///
    /// Returns `false` (without sliding) when the pat lands at or after
    /// the current deadline: the fire is already due, and deferring it
    /// here would make the same instant double-fire or never-fire
    /// depending on whether `advance_to` ran first. The due fire is
    /// delivered by [`Dispatcher::advance_to`], which restarts the window
    /// from the fire instant.
    pub fn pat(&mut self, id: IntentId, now: SimInstant) -> bool {
        match self.intents.get_mut(&id) {
            Some(r) => match r.intent {
                Intent::Watchdog { window } => match r.watchdog_deadline {
                    Some(deadline) if now >= deadline => false,
                    _ => {
                        r.watchdog_deadline = Some(now + window);
                        true
                    }
                },
                _ => false,
            },
            None => false,
        }
    }

    /// Number of live intents.
    pub fn len(&self) -> usize {
        self.intents.len()
    }

    /// Returns `true` if no intents are registered.
    pub fn is_empty(&self) -> bool {
        self.intents.is_empty()
    }

    /// The `[earliest, latest]` window of an intent's next firing.
    fn window_of(&self, r: &Registered) -> Option<(SimInstant, SimInstant)> {
        match r.intent {
            Intent::Periodic { period, slack } => {
                let ideal = r.registered_at + period * (r.ticks + 1);
                let earliest =
                    SimInstant::from_nanos(ideal.as_nanos().saturating_sub(slack.as_nanos()));
                Some((earliest, ideal + slack))
            }
            Intent::Timeout { deadline } => Some((deadline, deadline)),
            Intent::Watchdog { .. } => r.watchdog_deadline.map(|d| (d, d)),
            Intent::Delay { after, slack } => Some((after, after + slack)),
        }
    }

    /// Plans the next single wakeup: the earliest *latest-edge* among all
    /// windows, serving every intent whose window contains it.
    pub fn next_dispatch(&self) -> Option<Dispatch> {
        let mut ids: Vec<(IntentId, SimInstant, SimInstant)> = self
            .intents
            .iter()
            .filter_map(|(&id, r)| self.window_of(r).map(|(e, l)| (id, e, l)))
            .collect();
        if ids.is_empty() {
            return None;
        }
        ids.sort_by_key(|&(id, _, latest)| (latest, id));
        let point = ids[0].2;
        let mut fired: Vec<IntentId> = ids
            .iter()
            .filter(|&&(_, earliest, _)| earliest <= point)
            .map(|&(id, _, _)| id)
            .collect();
        fired.sort();
        Some(Dispatch { at: point, fired })
    }

    /// Advances to `now`, performing every due dispatch; returns them.
    ///
    /// # Panics
    ///
    /// Panics if time runs backwards.
    pub fn advance_to(&mut self, now: SimInstant) -> Vec<Dispatch> {
        assert!(now >= self.now, "dispatcher time must be monotone");
        let mut out = Vec::new();
        while let Some(d) = self.next_dispatch() {
            if d.at > now {
                break;
            }
            self.wakeups += 1;
            for &id in &d.fired {
                self.deliveries += 1;
                let Some(r) = self.intents.get_mut(&id) else {
                    continue;
                };
                match r.intent {
                    Intent::Periodic { .. } => {
                        // Drift-free: credit every grid tick covered.
                        r.ticks += 1;
                    }
                    Intent::Timeout { .. } | Intent::Delay { .. } => {
                        self.intents.remove(&id);
                    }
                    Intent::Watchdog { window } => {
                        // Fired: restart the window (the failure handler
                        // ran; monitoring continues).
                        r.watchdog_deadline = Some(d.at + window);
                    }
                }
            }
            out.push(d);
        }
        self.now = now;
        out
    }

    /// Wakeups a one-timer-per-intent implementation would have used for
    /// the same deliveries (every firing is its own wakeup).
    pub fn naive_wakeups(&self) -> u64 {
        self.deliveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimInstant {
        SimInstant::BOOT + SimDuration::from_millis(ms)
    }

    #[test]
    fn compatible_periodics_share_wakeups() {
        let mut d = Dispatcher::new();
        // Three 100 ms periodics with 30 ms slack, phase-shifted.
        d.register(
            at(0),
            Intent::Periodic {
                period: SimDuration::from_millis(100),
                slack: SimDuration::from_millis(30),
            },
        );
        d.register(
            at(10),
            Intent::Periodic {
                period: SimDuration::from_millis(100),
                slack: SimDuration::from_millis(30),
            },
        );
        d.register(
            at(20),
            Intent::Periodic {
                period: SimDuration::from_millis(100),
                slack: SimDuration::from_millis(30),
            },
        );
        // Batched rounds land at the first latest-edge (130, 230, …); ten
        // rounds complete by 1030 ms.
        let dispatches = d.advance_to(at(1_060));
        assert_eq!(d.deliveries, 30, "10 ticks each");
        // Batching: far fewer wakeups than deliveries.
        assert!(
            d.wakeups <= 12,
            "wakeups = {} for {} deliveries ({} dispatches)",
            d.wakeups,
            d.deliveries,
            dispatches.len()
        );
        assert!(d.wakeups < d.naive_wakeups());
    }

    #[test]
    fn exact_timeout_fires_alone_and_once() {
        let mut d = Dispatcher::new();
        let id = d.register(at(0), Intent::Timeout { deadline: at(500) });
        assert!(d.advance_to(at(499)).is_empty());
        let fired = d.advance_to(at(500));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fired, vec![id]);
        assert!(d.is_empty());
    }

    #[test]
    fn completed_timeout_never_fires() {
        let mut d = Dispatcher::new();
        let id = d.register(at(0), Intent::Timeout { deadline: at(500) });
        assert!(d.complete(id));
        assert!(d.advance_to(at(1_000)).is_empty());
        assert_eq!(d.wakeups, 0);
    }

    #[test]
    fn watchdog_slides_with_pats() {
        let mut d = Dispatcher::new();
        let id = d.register(
            at(0),
            Intent::Watchdog {
                window: SimDuration::from_millis(300),
            },
        );
        for ms in [100u64, 200, 300, 400] {
            assert!(d.advance_to(at(ms)).is_empty());
            assert!(d.pat(id, at(ms)));
        }
        // Silence after the last pat: fires at 400 + 300.
        let fired = d.advance_to(at(800));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].at, at(700));
    }

    #[test]
    fn pat_exactly_at_deadline_does_not_swallow_the_fire() {
        // Regression: a pat at the deadline instant used to slide the
        // window, so pat-then-advance never fired while advance-then-pat
        // fired *and* slid — the two orders disagreed. Now the pat is
        // refused and both orders deliver exactly one fire at 300 ms.
        let window = SimDuration::from_millis(300);
        // Order 1: pat first, then advance.
        let mut d1 = Dispatcher::new();
        let id1 = d1.register(at(0), Intent::Watchdog { window });
        assert!(!d1.pat(id1, at(300)), "pat at the deadline must be late");
        let fired = d1.advance_to(at(300));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].at, at(300));
        // Order 2: advance first, then pat.
        let mut d2 = Dispatcher::new();
        let id2 = d2.register(at(0), Intent::Watchdog { window });
        let fired = d2.advance_to(at(300));
        assert_eq!(fired.len(), 1);
        // The fire restarted the window from 300; a pat at the same
        // instant now lands against the *new* deadline (600) and slides
        // it — identical end state to order 1 plus the same single fire.
        assert!(d2.pat(id2, at(300)));
        assert_eq!(d1.deliveries, d2.deliveries);
    }

    #[test]
    fn poll_at_fire_instant_delivers_exactly_once() {
        let mut d = Dispatcher::new();
        d.register(at(0), Intent::Timeout { deadline: at(250) });
        // Polling exactly at the fire instant delivers the timeout…
        let fired = d.advance_to(at(250));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].at, at(250));
        // …and polling the same instant again delivers nothing.
        assert!(d.advance_to(at(250)).is_empty());
        assert_eq!(d.deliveries, 1);
    }

    #[test]
    fn delay_fires_within_slack_window() {
        let mut d = Dispatcher::new();
        d.register(
            at(0),
            Intent::Delay {
                after: at(100),
                slack: SimDuration::from_millis(50),
            },
        );
        d.register(
            at(0),
            Intent::Delay {
                after: at(120),
                slack: SimDuration::from_millis(50),
            },
        );
        let fired = d.advance_to(at(200));
        // Both share the single wakeup at the first latest-edge (150 ms).
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].at, at(150));
        assert_eq!(fired[0].fired.len(), 2);
    }

    #[test]
    fn periodic_grid_does_not_drift() {
        let mut d = Dispatcher::new();
        d.register(
            at(0),
            Intent::Periodic {
                period: SimDuration::from_millis(100),
                slack: SimDuration::ZERO,
            },
        );
        let fired = d.advance_to(at(1_000));
        let times: Vec<u64> = fired.iter().map(|x| x.at.as_nanos() / 1_000_000).collect();
        assert_eq!(times, (1..=10).map(|i| i * 100).collect::<Vec<_>>());
    }

    #[test]
    fn mixed_intents_unify() {
        let mut d = Dispatcher::new();
        d.register(
            at(0),
            Intent::Periodic {
                period: SimDuration::from_millis(250),
                slack: SimDuration::from_millis(60),
            },
        );
        let guard = d.register(
            at(0),
            Intent::Timeout {
                deadline: at(5_000),
            },
        );
        d.register(
            at(0),
            Intent::Delay {
                after: at(240),
                slack: SimDuration::from_millis(40),
            },
        );
        let w = d.register(
            at(0),
            Intent::Watchdog {
                window: SimDuration::from_millis(400),
            },
        );
        d.pat(w, at(200));
        let dispatches = d.advance_to(at(1_000));
        assert!(!dispatches.is_empty());
        // The delay rode along with the first periodic tick.
        let first = &dispatches[0];
        assert!(first.fired.len() >= 2, "{first:?}");
        d.complete(guard);
        assert!(d
            .advance_to(at(6_000))
            .iter()
            .all(|x| !x.fired.contains(&guard)));
    }
}
