//! Timeout provenance and dependency tracking (Section 5.2).
//!
//! The paper identifies relationships between concurrent timers `t1` and
//! `t2` where `t1` is set no later than `t2` and expires after it
//! (*overlap*), classified by which expiries are significant:
//!
//! * **(a)** either just `t1`, or both, signify failure → `max(t1, t2)`
//!   is the real deadline and `t2` is redundant (the DHCP §4.4.5 case);
//! * **(b)** only `t2` need expire → `min(t1, t2)` is the deadline and
//!   `t1` can be eliminated;
//! * **(c)** neither need expire — but cancelling one should cancel the
//!   other (TCP keepalive vs. retransmission);
//!
//! plus a *dependency* relation: `t2` is only set once `t1` ends.
//! Overlaps can be rewritten as dependencies ("set t2 only, and upon its
//! expiry set t1 for the remaining time") — one technique to reduce the
//! number of concurrent timers. This module implements the bookkeeping,
//! the elision rules, the rewrite, and provenance chains for debugging.

use std::collections::{HashMap, HashSet};

use simtime::SimInstant;

/// A timer identity within the dependency graph.
pub type DepId = u64;

/// Which expiries of an overlapping pair are significant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlapKind {
    /// Rule (a): the *later* expiry is the real deadline.
    MaxMatters,
    /// Rule (b): the *earlier* expiry is the real deadline.
    MinMatters,
    /// Rule (c): neither expiry is wanted; cancellation propagates.
    Neither,
}

/// A declared relation between two timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a` overlaps `b` (`a` set no later, expiring no earlier).
    Overlaps(OverlapKind),
    /// `b` is only set when `a` ends.
    DependsOn,
}

/// One declared timer.
#[derive(Debug, Clone)]
struct DepTimer {
    set_at: SimInstant,
    expires: SimInstant,
    label: String,
}

/// The provenance/dependency graph.
#[derive(Debug, Default)]
pub struct DepGraph {
    timers: HashMap<DepId, DepTimer>,
    relations: Vec<(DepId, DepId, Relation)>,
}

/// One step of a sequentialised (dependency-rewritten) schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStep {
    /// The timer armed in this phase.
    pub id: DepId,
    /// Its expiry instant.
    pub until: SimInstant,
}

impl DepGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a timer with its provenance label.
    ///
    /// # Panics
    ///
    /// Panics if `expires < set_at`.
    pub fn declare(&mut self, id: DepId, label: &str, set_at: SimInstant, expires: SimInstant) {
        assert!(expires >= set_at, "timer expires before it is set");
        self.timers.insert(
            id,
            DepTimer {
                set_at,
                expires,
                label: label.to_owned(),
            },
        );
    }

    /// Declares a relation between two known timers.
    ///
    /// For overlaps, validates the paper's definition: `a` set no later
    /// than `b` and expiring no earlier.
    ///
    /// # Panics
    ///
    /// Panics if either timer is undeclared, or an overlap violates the
    /// set/expiry ordering.
    pub fn relate(&mut self, a: DepId, b: DepId, relation: Relation) {
        let ta = &self.timers[&a];
        let tb = &self.timers[&b];
        if let Relation::Overlaps(_) = relation {
            assert!(
                ta.set_at <= tb.set_at && ta.expires >= tb.expires,
                "overlap requires a set no later and expiring no earlier"
            );
        }
        self.relations.push((a, b, relation));
    }

    /// The timers that actually need arming after applying the elision
    /// rules: rule (a) elides the inner timer, rule (b) elides the outer.
    pub fn required_armed(&self) -> HashSet<DepId> {
        let mut required: HashSet<DepId> = self.timers.keys().copied().collect();
        for &(a, b, rel) in &self.relations {
            match rel {
                Relation::Overlaps(OverlapKind::MaxMatters) => {
                    required.remove(&b);
                }
                Relation::Overlaps(OverlapKind::MinMatters) => {
                    required.remove(&a);
                }
                Relation::Overlaps(OverlapKind::Neither) => {}
                Relation::DependsOn => {
                    // The dependent timer is not armed until `a` ends.
                    required.remove(&b);
                }
            }
        }
        required
    }

    /// Number of concurrent timer slots saved by the elision rules.
    pub fn concurrent_reduction(&self) -> usize {
        self.timers.len() - self.required_armed().len()
    }

    /// Cancellation propagation (rule (c)): cancelling `id` returns every
    /// other timer that should be cancelled with it (transitively).
    pub fn propagate_cancel(&self, id: DepId) -> Vec<DepId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        let mut seen = HashSet::from([id]);
        while let Some(cur) = stack.pop() {
            for &(a, b, rel) in &self.relations {
                if rel == Relation::Overlaps(OverlapKind::Neither) {
                    let other = if a == cur {
                        Some(b)
                    } else if b == cur {
                        Some(a)
                    } else {
                        None
                    };
                    if let Some(o) = other {
                        if seen.insert(o) {
                            out.push(o);
                            stack.push(o);
                        }
                    }
                }
            }
        }
        out
    }

    /// Rewrites an overlap into a sequential dependency plan: arm the
    /// inner timer `b` only, and on its expiry arm `a` for the remaining
    /// time (the paper's overlap→dependency transformation). Only one
    /// timer is ever concurrent.
    ///
    /// # Panics
    ///
    /// Panics if the timers are undeclared.
    pub fn sequential_plan(&self, a: DepId, b: DepId) -> Vec<PlanStep> {
        let ta = &self.timers[&a];
        let tb = &self.timers[&b];
        let mut plan = vec![PlanStep {
            id: b,
            until: tb.expires,
        }];
        if ta.expires > tb.expires {
            plan.push(PlanStep {
                id: a,
                until: ta.expires,
            });
        }
        plan
    }

    /// The provenance chain of `id`: its label, then the labels of the
    /// timers it (transitively) depends on — the traceability §5.2 wants
    /// for debugging nested timeouts.
    pub fn trace_path(&self, id: DepId) -> Vec<String> {
        let mut path = Vec::new();
        let mut cur = Some(id);
        let mut seen = HashSet::new();
        while let Some(c) = cur {
            if !seen.insert(c) {
                break;
            }
            if let Some(t) = self.timers.get(&c) {
                path.push(t.label.clone());
            }
            cur = self
                .relations
                .iter()
                .find(|&&(_, b, rel)| b == c && rel == Relation::DependsOn)
                .map(|&(a, _, _)| a);
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::SimDuration;

    fn at(s: u64) -> SimInstant {
        SimInstant::BOOT + SimDuration::from_secs(s)
    }

    #[test]
    fn rule_a_elides_inner() {
        let mut g = DepGraph::new();
        g.declare(1, "dhcp:overall", at(0), at(60));
        g.declare(2, "dhcp:per_server", at(0), at(10));
        g.relate(1, 2, Relation::Overlaps(OverlapKind::MaxMatters));
        let req = g.required_armed();
        assert!(req.contains(&1));
        assert!(!req.contains(&2));
        assert_eq!(g.concurrent_reduction(), 1);
    }

    #[test]
    fn rule_b_elides_outer() {
        let mut g = DepGraph::new();
        g.declare(1, "outer", at(0), at(60));
        g.declare(2, "inner", at(5), at(10));
        g.relate(1, 2, Relation::Overlaps(OverlapKind::MinMatters));
        let req = g.required_armed();
        assert!(!req.contains(&1));
        assert!(req.contains(&2));
    }

    #[test]
    fn rule_c_propagates_cancel() {
        let mut g = DepGraph::new();
        g.declare(1, "tcp:keepalive", at(0), at(7200));
        g.declare(2, "tcp:retransmit", at(0), at(3));
        g.relate(1, 2, Relation::Overlaps(OverlapKind::Neither));
        // Neither is elided...
        assert_eq!(g.required_armed().len(), 2);
        // ...but cancelling one cancels the other.
        assert_eq!(g.propagate_cancel(1), vec![2]);
        assert_eq!(g.propagate_cancel(2), vec![1]);
    }

    #[test]
    fn sequential_plan_halves_concurrency() {
        let mut g = DepGraph::new();
        g.declare(1, "outer", at(0), at(60));
        g.declare(2, "inner", at(0), at(10));
        let plan = g.sequential_plan(1, 2);
        assert_eq!(
            plan,
            vec![
                PlanStep {
                    id: 2,
                    until: at(10)
                },
                PlanStep {
                    id: 1,
                    until: at(60)
                },
            ]
        );
    }

    #[test]
    fn dependency_chain_traces() {
        let mut g = DepGraph::new();
        g.declare(1, "gui:open_server", at(0), at(120));
        g.declare(2, "smb:connect", at(0), at(30));
        g.declare(3, "tcp:syn", at(0), at(3));
        g.relate(1, 2, Relation::DependsOn);
        g.relate(2, 3, Relation::DependsOn);
        assert_eq!(
            g.trace_path(3),
            vec!["tcp:syn", "smb:connect", "gui:open_server"]
        );
        // Dependent timers are not armed up front.
        let req = g.required_armed();
        assert_eq!(req, HashSet::from([1]));
    }

    #[test]
    #[should_panic(expected = "overlap requires")]
    fn invalid_overlap_rejected() {
        let mut g = DepGraph::new();
        g.declare(1, "short", at(0), at(5));
        g.declare(2, "long", at(0), at(50));
        g.relate(1, 2, Relation::Overlaps(OverlapKind::MaxMatters));
    }
}
