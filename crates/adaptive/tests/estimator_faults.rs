//! The adaptive-timeout argument under injected network degradation
//! (Section 5.1's TCP story, stress-tested with the fault plane).
//!
//! A WAN link carries a [`netsim::NetFault::burst`] — ten seconds in
//! which RTT and jitter quadruple. Two senders ride it side by side on
//! identical RTT draws: one with a *fixed* retransmission timeout
//! calibrated to clean conditions (the "30 seconds is not enough" static
//! sizing the paper criticises, scaled to the link), one with the
//! Jacobson/Karels [`adaptive::rtt::RttEstimator`]. The adaptive timer
//! must follow the shifted RTT distribution into and out of the episode;
//! the fixed timer must rack up spurious retransmissions throughout it.

use adaptive::rtt::RttEstimator;
use netsim::{Link, NetFault};
use simtime::{SimDuration, SimInstant, SimRng};

/// One segment send every 100 ms for 20 s; the burst covers [5 s, 15 s).
const SEND_GAP: SimDuration = SimDuration::from_millis(100);
const RUN: SimDuration = SimDuration::from_secs(20);

struct Outcome {
    /// Spurious retransmits: the ACK was in flight, the timer fired first.
    fixed_spurious: u64,
    adaptive_spurious: u64,
    /// Smoothed RTT at the last in-burst send, for tracking checks.
    srtt_in_burst: Option<SimDuration>,
    /// Smoothed RTT at the end of the clean warm-up, for the baseline.
    srtt_clean: Option<SimDuration>,
}

/// Replays the same RTT draw sequence against both timeout policies.
fn replay(seed: u64) -> Outcome {
    let link = Link::wan().with_fault(NetFault::burst());
    let mut rng = SimRng::new(seed);
    // Fixed RTO: generous for the clean link (mean 130 ms + 4σ ≈ 180 ms,
    // doubled), hopeless once the burst quadruples the RTT.
    let fixed_rto = SimDuration::from_millis(360);
    let mut est = RttEstimator::with_bounds(
        SimDuration::from_millis(200),
        SimDuration::from_secs(120),
        SimDuration::from_secs(3),
    );
    let mut out = Outcome {
        fixed_spurious: 0,
        adaptive_spurious: 0,
        srtt_in_burst: None,
        srtt_clean: None,
    };
    let burst = NetFault::burst();
    let mut now = SimInstant::BOOT;
    while now.duration_since(SimInstant::BOOT) < RUN {
        // One draw decides the segment's fate for both policies.
        let delivered = link.send_segment_at(now, &mut rng);
        if let Some(rtt) = delivered {
            if rtt > fixed_rto {
                out.fixed_spurious += 1;
            }
            if rtt > est.rto() {
                // The adaptive timer fired before the ACK landed: a
                // spurious retransmit, and (Karn's rule) no RTT sample.
                out.adaptive_spurious += 1;
                est.on_timeout();
                est.on_ack(rtt); // retransmitted flag eats the sample
            } else {
                est.on_ack(rtt);
            }
        } else {
            // Genuine loss: both policies legitimately time out.
            est.on_timeout();
            est.on_ack(SimDuration::ZERO); // Karn: ACK of retransmit, no sample
        }
        if burst.active_at(now) {
            out.srtt_in_burst = est.srtt();
        } else if now < SimInstant::BOOT + burst.start {
            out.srtt_clean = est.srtt();
        }
        now += SEND_GAP;
    }
    out
}

#[test]
fn adaptive_tracks_the_shifted_rtt_fixed_does_not() {
    for seed in [1u64, 2, 3] {
        let out = replay(seed);
        let clean = out
            .srtt_clean
            .expect("warm-up produced samples")
            .as_secs_f64();
        let shifted = out
            .srtt_in_burst
            .expect("burst produced samples")
            .as_secs_f64();
        // Clean-phase estimate sits near the link's 130 ms base RTT.
        assert!(
            (0.09..0.2).contains(&clean),
            "seed {seed}: clean srtt {clean:.3}s is off the 130 ms base"
        );
        // By the end of the burst the estimator has followed the ×4 shift
        // at least half-way (backoff and Karn slow it, they must not stop
        // it).
        assert!(
            shifted > 2.0 * clean,
            "seed {seed}: srtt {shifted:.3}s never tracked the ×4 burst from {clean:.3}s"
        );
        // The fixed timer, sized for clean conditions, fires spuriously
        // throughout the burst; the adaptive one re-learns and stops.
        assert!(
            out.fixed_spurious >= 20,
            "seed {seed}: fixed RTO saw only {} spurious retransmits across a 10 s ×4 burst",
            out.fixed_spurious
        );
        assert!(
            out.adaptive_spurious * 3 < out.fixed_spurious,
            "seed {seed}: adaptive ({}) must spuriously retransmit far less than fixed ({})",
            out.adaptive_spurious,
            out.fixed_spurious
        );
    }
}

#[test]
fn clean_link_produces_no_spurious_retransmits_for_either() {
    // Without the fault the fixed timer's sizing is adequate: neither
    // policy fires early (modulo genuine loss, excluded by construction).
    let link = Link::wan();
    let mut rng = SimRng::new(9);
    let fixed_rto = SimDuration::from_millis(360);
    let mut est = RttEstimator::new();
    let mut now = SimInstant::BOOT;
    let mut fixed = 0u64;
    let mut adaptive = 0u64;
    while now.duration_since(SimInstant::BOOT) < RUN {
        if let Some(rtt) = link.send_segment_at(now, &mut rng) {
            if rtt > fixed_rto {
                fixed += 1;
            }
            if est.srtt().is_some() && rtt > est.rto() {
                adaptive += 1;
            }
            est.on_ack(rtt);
        }
        now += SEND_GAP;
    }
    assert_eq!(fixed, 0, "fixed RTO fired spuriously on the clean link");
    assert_eq!(
        adaptive, 0,
        "adaptive RTO fired spuriously on the clean link"
    );
}

#[test]
fn estimator_recovers_after_the_burst_ends() {
    let link = Link::wan().with_fault(NetFault::burst());
    let mut rng = SimRng::new(4);
    let mut est = RttEstimator::new();
    let mut now = SimInstant::BOOT;
    // Run well past the burst (which ends at 15 s).
    while now.duration_since(SimInstant::BOOT) < SimDuration::from_secs(40) {
        if let Some(rtt) = link.send_segment_at(now, &mut rng) {
            est.on_ack(rtt);
        } else {
            est.on_timeout();
            est.on_ack(SimDuration::ZERO);
        }
        now += SEND_GAP;
    }
    // 25 s of clean samples after the episode: back near the base RTT.
    let srtt = est.srtt().unwrap().as_secs_f64();
    assert!(
        (0.09..0.25).contains(&srtt),
        "estimator failed to converge back after the burst: {srtt:.3}s"
    );
}
