//! Deterministic random number generation with forkable substreams.
//!
//! Every experiment in the reproduction takes a single `u64` seed. Each
//! simulated subsystem forks its own independent stream from that seed via
//! [`SimRng::fork`], so the sequence of draws in one subsystem never shifts
//! the draws seen by another — adding a workload process does not change
//! what the TCP model does. The core generator is xoshiro256++ seeded
//! through SplitMix64, both public-domain algorithms with well-studied
//! statistical quality.

use crate::instant::SimDuration;

/// Advances a SplitMix64 state and returns the next output.
///
/// Used for seeding and for hashing fork labels into seed material.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ random number generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed.
    ///
    /// The seed is expanded through SplitMix64 as recommended by the
    /// xoshiro authors; any seed (including zero) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Forks an independent substream identified by a label.
    ///
    /// The label is hashed (FNV-1a) together with fresh output from this
    /// generator, so distinct labels produce uncorrelated streams and the
    /// same label forked twice produces two distinct streams.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        SimRng::new(h ^ self.next_u64())
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // Use the top 53 bits for a dyadic rational in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `(0, 1]`, safe as a log argument.
    pub fn unit_f64_open(&mut self) -> f64 {
        1.0 - self.unit_f64()
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire). The loop rejects the biased
        // region, which is vanishingly small for the spans we use.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            let low = m as u64;
            if low >= span.wrapping_neg() % span {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Returns a uniformly random duration in `[lo, hi)`.
    pub fn duration_between(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        if lo >= hi {
            return lo;
        }
        SimDuration::from_nanos(self.range_u64(lo.as_nanos(), hi.as_nanos()))
    }

    /// Picks a uniformly random element of a slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_of_label() {
        let mut root1 = SimRng::new(7);
        let mut root2 = SimRng::new(7);
        let mut f1 = root1.fork("tcp");
        let mut f2 = root2.fork("arp");
        // Distinct labels from identical roots give distinct streams.
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn fork_twice_differs() {
        let mut root = SimRng::new(7);
        let mut f1 = root.fork("x");
        let mut f2 = root.fork("x");
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.unit_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn range_u64_covers_bounds() {
        let mut r = SimRng::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range_u64(10, 14);
            assert!((10..14).contains(&v));
            seen_lo |= v == 10;
            seen_hi |= v == 13;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(11);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SimRng::new(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.unit_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::new(0).range_u64(5, 5);
    }

    #[test]
    fn duration_between_degenerate() {
        let mut r = SimRng::new(0);
        let d = SimDuration::from_secs(1);
        assert_eq!(r.duration_between(d, d), d);
    }
}
