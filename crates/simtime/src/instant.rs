//! Nanosecond-resolution virtual instants and durations.
//!
//! These mirror `std::time::{Instant, Duration}` but are plain `u64`
//! nanosecond counters anchored at simulated boot, so they are `Copy`,
//! `Ord`, serialisable, and free of any platform clock dependency.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span of virtual time with nanosecond resolution.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration (~584 years).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from a floating-point number of seconds.
    ///
    /// Negative or non-finite inputs saturate to zero; values beyond the
    /// representable range saturate to [`SimDuration::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Returns the duration as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration as whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Returns the duration as a floating-point number of seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by a floating-point factor, saturating.
    ///
    /// Negative or non-finite factors yield zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the larger of the two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of the two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.as_secs_f64() / rhs.as_secs_f64()
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0s")
        } else if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

/// A point in virtual time, measured in nanoseconds since simulated boot.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The instant of simulated boot.
    pub const BOOT: SimInstant = SimInstant(0);

    /// Creates an instant at the given number of nanoseconds since boot.
    pub const fn from_nanos(ns: u64) -> Self {
        SimInstant(ns)
    }

    /// Nanoseconds since simulated boot.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulated boot, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is in the future, mirroring
    /// `Instant::saturating_duration_since`.
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier` is later.
    pub fn checked_duration_since(self, earlier: SimInstant) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimInstant {
        SimInstant(self.0.saturating_add(d.as_nanos()))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn sub(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 - rhs.as_nanos())
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions_round_trip() {
        assert_eq!(SimDuration::from_secs(5).as_millis(), 5_000);
        assert_eq!(SimDuration::from_millis(4).as_nanos(), 4_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_secs(), 2);
    }

    #[test]
    fn from_secs_f64_saturates() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        let half = SimDuration::from_secs_f64(0.5);
        assert_eq!(half.as_millis(), 500);
    }

    #[test]
    fn instant_arithmetic() {
        let a = SimInstant::from_nanos(1_000);
        let b = a + SimDuration::from_nanos(500);
        assert_eq!(b.as_nanos(), 1_500);
        assert_eq!(b - a, SimDuration::from_nanos(500));
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
        assert_eq!(b.duration_since(a), SimDuration::from_nanos(500));
        assert_eq!(a.checked_duration_since(b), None);
    }

    #[test]
    fn duration_ratio() {
        let set = SimDuration::from_secs(10);
        let ran = SimDuration::from_secs(5);
        assert!((ran / set - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::ZERO.saturating_sub(SimDuration::from_nanos(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(1.5).as_millis(), 3_000);
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }
}
