//! Virtual time substrate for the timer-usage study.
//!
//! The paper ("30 Seconds is Not Enough!", EuroSys 2008) measures timer
//! behaviour on real hardware over 30-minute wall-clock runs. Our
//! reproduction replaces wall-clock time with a deterministic virtual clock
//! so that every experiment is exactly repeatable from a seed.
//!
//! This crate provides:
//!
//! * [`SimInstant`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`jiffies`] — the Linux jiffy clock (HZ = 250 in the kernel the paper
//!   instrumented) and the Vista clock-interrupt period,
//! * [`rng`] — a small, fast, deterministic random number generator with
//!   forkable substreams, so adding a new random draw in one subsystem does
//!   not perturb every other subsystem,
//! * [`dist`] — the latency/interarrival distributions used by the workload
//!   and network models,
//! * [`faults`] — deterministic clock perturbation (tick jitter, coarse
//!   quantisation) for fault-injection experiments.

pub mod dist;
pub mod faults;
pub mod instant;
pub mod jiffies;
pub mod rng;

pub use dist::{Empirical, Exp, LogNormal, Normal, Pareto, Sample};
pub use faults::ClockFault;
pub use instant::{SimDuration, SimInstant};
pub use jiffies::{Hz, Jiffies, JiffyClock, LINUX_HZ, VISTA_TICK};
pub use rng::SimRng;
