//! The Linux jiffy clock and the Vista clock-interrupt period.
//!
//! The kernel the paper instrumented (Linux 2.6.23.9, default config) runs
//! its standard timer interface off a periodic tick at `HZ = 250`, i.e. a
//! 4 ms jiffy. Timeout values passed to the kernel are rounded **up** to the
//! next jiffy boundary, which produces the quantisation the paper observes
//! in the Linux scatter plots (Figures 8–11) and the absence of sub-4 ms
//! timers in Linux traces.
//!
//! Vista instead processes its timer ring on a clock interrupt whose default
//! period is 15.625 ms (64 Hz), but timers carry 100 ns-resolution due times,
//! so no jiffy-style quantisation of the *requested* value occurs — only
//! delivery-time rounding.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

use crate::instant::{SimDuration, SimInstant};

/// A tick frequency in Hertz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Hz(pub u32);

impl Hz {
    /// The period of one tick at this frequency.
    pub fn period(self) -> SimDuration {
        SimDuration::from_nanos(1_000_000_000 / self.0 as u64)
    }
}

/// The Linux timer-interrupt frequency used throughout the study.
pub const LINUX_HZ: Hz = Hz(250);

/// Vista's default clock-interrupt period (64 Hz => 15.625 ms).
pub const VISTA_TICK: SimDuration = SimDuration::from_micros(15_625);

/// An absolute time in jiffies since boot, mirroring the kernel's `jiffies`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Jiffies(pub u64);

impl Jiffies {
    /// Jiffy zero (boot).
    pub const ZERO: Jiffies = Jiffies(0);

    /// Returns the raw jiffy count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction of a jiffy count.
    pub fn saturating_sub(self, rhs: Jiffies) -> Jiffies {
        Jiffies(self.0.saturating_sub(rhs.0))
    }

    /// Rounds this jiffy value to the next whole second, mirroring the
    /// kernel's `round_jiffies` (introduced in 2.6.20 to batch wakeups).
    ///
    /// Like the kernel, values already on a second boundary are left alone,
    /// and the rounding always moves the expiry *later* (never earlier) so a
    /// timeout is never shortened.
    pub fn round_to_second(self, hz: Hz) -> Jiffies {
        let per_sec = hz.0 as u64;
        let rem = self.0 % per_sec;
        if rem == 0 {
            self
        } else {
            Jiffies(self.0 + (per_sec - rem))
        }
    }
}

impl Add<u64> for Jiffies {
    type Output = Jiffies;
    fn add(self, rhs: u64) -> Jiffies {
        Jiffies(self.0 + rhs)
    }
}

impl AddAssign<u64> for Jiffies {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Jiffies> for Jiffies {
    type Output = u64;
    fn sub(self, rhs: Jiffies) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Jiffies {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}j", self.0)
    }
}

/// Converts between nanosecond virtual time and jiffies at a fixed `HZ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JiffyClock {
    hz: Hz,
}

impl JiffyClock {
    /// Creates a jiffy clock at the given frequency.
    pub const fn new(hz: Hz) -> Self {
        JiffyClock { hz }
    }

    /// The clock frequency.
    pub const fn hz(self) -> Hz {
        self.hz
    }

    /// The length of one jiffy.
    pub fn jiffy(self) -> SimDuration {
        self.hz.period()
    }

    /// The current jiffy count at instant `now` (truncating, like the
    /// kernel's tick counter).
    pub fn jiffies_at(self, now: SimInstant) -> Jiffies {
        Jiffies(now.as_nanos() / self.jiffy().as_nanos())
    }

    /// The instant of the tick that *begins* jiffy `j`.
    pub fn instant_of(self, j: Jiffies) -> SimInstant {
        SimInstant::from_nanos(j.0 * self.jiffy().as_nanos())
    }

    /// Converts a relative timeout to a jiffy count, rounding **up** like
    /// the kernel's `msecs_to_jiffies`/`timespec_to_jiffies` so a timeout
    /// never fires early. A zero duration still costs one jiffy — the
    /// kernel cannot expire a timer in the current tick's past.
    pub fn duration_to_jiffies(self, d: SimDuration) -> u64 {
        let per = self.jiffy().as_nanos();
        let n = d.as_nanos().div_ceil(per);
        n.max(1)
    }

    /// Converts a jiffy count to the equivalent duration.
    pub fn jiffies_to_duration(self, n: u64) -> SimDuration {
        SimDuration::from_nanos(n * self.jiffy().as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLK: JiffyClock = JiffyClock::new(LINUX_HZ);

    #[test]
    fn linux_jiffy_is_4ms() {
        assert_eq!(CLK.jiffy(), SimDuration::from_millis(4));
    }

    #[test]
    fn vista_tick_is_15_625ms() {
        assert_eq!(VISTA_TICK.as_micros(), 15_625);
    }

    #[test]
    fn duration_rounds_up_to_jiffies() {
        assert_eq!(CLK.duration_to_jiffies(SimDuration::from_millis(4)), 1);
        assert_eq!(CLK.duration_to_jiffies(SimDuration::from_millis(5)), 2);
        assert_eq!(CLK.duration_to_jiffies(SimDuration::from_millis(8)), 2);
        // A zero timeout still takes one tick to fire.
        assert_eq!(CLK.duration_to_jiffies(SimDuration::ZERO), 1);
        // One second is exactly HZ jiffies.
        assert_eq!(CLK.duration_to_jiffies(SimDuration::from_secs(1)), 250);
    }

    #[test]
    fn jiffies_at_truncates() {
        assert_eq!(CLK.jiffies_at(SimInstant::from_nanos(0)), Jiffies(0));
        assert_eq!(
            CLK.jiffies_at(SimInstant::BOOT + SimDuration::from_millis(3)),
            Jiffies(0)
        );
        assert_eq!(
            CLK.jiffies_at(SimInstant::BOOT + SimDuration::from_millis(4)),
            Jiffies(1)
        );
    }

    #[test]
    fn instant_of_inverts_jiffies_at() {
        for j in [0u64, 1, 17, 250, 123_456] {
            let inst = CLK.instant_of(Jiffies(j));
            assert_eq!(CLK.jiffies_at(inst), Jiffies(j));
        }
    }

    #[test]
    fn round_to_second_matches_kernel_semantics() {
        // 250 jiffies per second at HZ=250.
        assert_eq!(Jiffies(0).round_to_second(LINUX_HZ), Jiffies(0));
        assert_eq!(Jiffies(1).round_to_second(LINUX_HZ), Jiffies(250));
        assert_eq!(Jiffies(250).round_to_second(LINUX_HZ), Jiffies(250));
        assert_eq!(Jiffies(251).round_to_second(LINUX_HZ), Jiffies(500));
        assert_eq!(Jiffies(499).round_to_second(LINUX_HZ), Jiffies(500));
    }

    #[test]
    fn round_trip_duration_jiffies() {
        let d = SimDuration::from_secs(5);
        let j = CLK.duration_to_jiffies(d);
        assert_eq!(CLK.jiffies_to_duration(j), d);
    }
}
