//! Deterministic virtual-clock perturbation.
//!
//! The paper's methodology assumes the tracing clock is exact; real
//! deployments see tick jitter and coarse clock sources ("Time Attacks
//! using Kernel Vulnerabilities" treats clock perturbation as a
//! first-class failure mode). [`ClockFault`] models the two perturbations
//! a trace consumer actually observes — per-record timestamp jitter and
//! coarse quantisation — as a pure, seedable function so faulted runs
//! stay exactly reproducible.

use crate::instant::{SimDuration, SimInstant};
use crate::rng::SimRng;

/// A deterministic perturbation of observed timestamps.
///
/// All fields are plain durations so the fault can sit inside an
/// experiment cache key (`Copy + Eq + Hash`). [`ClockFault::none`] is the
/// identity: it draws no randomness and returns timestamps untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockFault {
    /// Symmetric jitter amplitude: each timestamp shifts by a uniform
    /// offset in `[-jitter, +jitter]` (clamped at boot).
    pub jitter: SimDuration,
    /// Coarse quantisation: timestamps are floored to a multiple of this
    /// quantum (zero disables quantisation).
    pub quantum: SimDuration,
}

impl ClockFault {
    /// The identity fault: no jitter, no quantisation.
    pub const fn none() -> Self {
        ClockFault {
            jitter: SimDuration::ZERO,
            quantum: SimDuration::ZERO,
        }
    }

    /// True when this fault perturbs nothing.
    pub fn is_none(&self) -> bool {
        self.jitter.is_zero() && self.quantum.is_zero()
    }

    /// The default injection preset: ±250 µs of tick jitter over a 100 µs
    /// quantum — enough to reorder tightly spaced records and to collapse
    /// sub-quantum gaps, without moving any timer by a humanly visible
    /// amount.
    pub const fn jittery() -> Self {
        ClockFault {
            jitter: SimDuration::from_micros(250),
            quantum: SimDuration::from_micros(100),
        }
    }

    /// Perturbs one observed timestamp.
    ///
    /// Jitter draws exactly one random offset when enabled (and none when
    /// disabled), so the perturbation is a pure function of the fault,
    /// the RNG state and the input. The result saturates at boot.
    pub fn perturb(&self, ts: SimInstant, rng: &mut SimRng) -> SimInstant {
        if !self.is_none() {
            telemetry::sim::add(telemetry::SimCounter::ClockPerturbations, 1);
        }
        let mut ns = ts.as_nanos();
        if !self.jitter.is_zero() {
            let span = self.jitter.as_nanos();
            let offset = rng.range_u64(0, 2 * span + 1);
            ns = (ns + offset).saturating_sub(span);
        }
        if !self.quantum.is_zero() {
            let q = self.quantum.as_nanos();
            ns -= ns % q;
        }
        SimInstant::from_nanos(ns)
    }
}

impl Default for ClockFault {
    fn default() -> Self {
        ClockFault::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity_and_draws_nothing() {
        let fault = ClockFault::none();
        let mut rng = SimRng::new(1);
        let mut witness = SimRng::new(1);
        let ts = SimInstant::from_nanos(123_456_789);
        assert_eq!(fault.perturb(ts, &mut rng), ts);
        // No randomness was consumed.
        assert_eq!(rng.next_u64(), witness.next_u64());
    }

    #[test]
    fn jitter_stays_within_amplitude() {
        let fault = ClockFault {
            jitter: SimDuration::from_micros(50),
            quantum: SimDuration::ZERO,
        };
        let mut rng = SimRng::new(7);
        let ts = SimInstant::from_nanos(1_000_000);
        for _ in 0..10_000 {
            let p = fault.perturb(ts, &mut rng).as_nanos();
            assert!(
                (1_000_000 - 50_000..=1_000_000 + 50_000).contains(&p),
                "{p}"
            );
        }
    }

    #[test]
    fn jitter_saturates_at_boot() {
        let fault = ClockFault {
            jitter: SimDuration::from_secs(1),
            quantum: SimDuration::ZERO,
        };
        let mut rng = SimRng::new(3);
        for _ in 0..1_000 {
            // A timestamp near boot can never be pushed before boot.
            let p = fault.perturb(SimInstant::from_nanos(10), &mut rng);
            assert!(p.as_nanos() <= 1_000_000_000 + 10);
        }
    }

    #[test]
    fn quantisation_floors_to_quantum() {
        let fault = ClockFault {
            jitter: SimDuration::ZERO,
            quantum: SimDuration::from_micros(100),
        };
        let mut rng = SimRng::new(5);
        let p = fault.perturb(SimInstant::from_nanos(123_456_789), &mut rng);
        assert_eq!(p.as_nanos(), 123_400_000);
        assert_eq!(p.as_nanos() % 100_000, 0);
    }

    #[test]
    fn same_seed_same_perturbation() {
        let fault = ClockFault::jittery();
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for i in 0..1_000u64 {
            let ts = SimInstant::from_nanos(i * 977);
            assert_eq!(fault.perturb(ts, &mut a), fault.perturb(ts, &mut b));
        }
    }
}
