//! Probability distributions used by the workload and network models.
//!
//! The workload models need a handful of heavy-tailed and light-tailed
//! latency/interarrival distributions: exponential (Poisson arrivals),
//! normal (jitter around a mean RTT), log-normal (service times), Pareto
//! (heavy-tailed think times), and empirical mixtures (observed discrete
//! value sets such as Skype's 0 / 0.4999 / 0.5 s timeouts).

use serde::{Deserialize, Serialize};

use crate::instant::SimDuration;
use crate::rng::SimRng;

/// A distribution that can be sampled with a [`SimRng`].
pub trait Sample {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// Draws one sample and interprets it as seconds, clamped at zero.
    fn sample_duration(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(self.sample(rng).max(0.0))
    }
}

/// Exponential distribution with the given mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exp {
    /// Mean of the distribution (1 / rate).
    pub mean: f64,
}

impl Exp {
    /// Creates an exponential distribution with mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn new(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean {mean}");
        Exp { mean }
    }
}

impl Sample for Exp {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        -self.mean * rng.unit_f64_open().ln()
    }
}

/// Normal distribution via the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    /// Mean.
    pub mu: f64,
    /// Standard deviation.
    pub sigma: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        Normal { mu, sigma }
    }
}

impl Sample for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u1 = rng.unit_f64_open();
        let u2 = rng.unit_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mu + self.sigma * z
    }
}

/// Log-normal distribution: `exp(Normal(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Standard deviation of the underlying normal.
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution with underlying normal parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        let n = Normal::new(mu, sigma);
        LogNormal {
            mu: n.mu,
            sigma: n.sigma,
        }
    }

    /// Creates a log-normal from the desired *median* and a shape factor.
    ///
    /// `median` maps to `exp(mu)`; `sigma` is the log-space spread.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median.is_finite() && median > 0.0);
        LogNormal::new(median.ln(), sigma)
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        Normal {
            mu: self.mu,
            sigma: self.sigma,
        }
        .sample(rng)
        .exp()
    }
}

/// Pareto distribution (heavy-tailed), `x >= scale`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    /// Minimum value (scale, `x_m`).
    pub scale: f64,
    /// Tail index (shape, `alpha`); smaller is heavier-tailed.
    pub shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics if scale or shape are not finite and positive.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0);
        assert!(shape.is_finite() && shape > 0.0);
        Pareto { scale, shape }
    }
}

impl Sample for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.scale / rng.unit_f64_open().powf(1.0 / self.shape)
    }
}

/// A weighted discrete (empirical) distribution over `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Empirical {
    values: Vec<f64>,
    cumulative: Vec<f64>,
}

impl Empirical {
    /// Builds an empirical distribution from `(value, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty or any weight is negative, or all weights
    /// are zero.
    pub fn new(pairs: &[(f64, f64)]) -> Self {
        assert!(!pairs.is_empty(), "empirical distribution needs values");
        let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
        assert!(
            pairs.iter().all(|&(_, w)| w >= 0.0) && total > 0.0,
            "weights must be non-negative with positive sum"
        );
        let mut values = Vec::with_capacity(pairs.len());
        let mut cumulative = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for &(v, w) in pairs {
            acc += w / total;
            values.push(v);
            cumulative.push(acc);
        }
        // Guard against floating point drift on the last bucket.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Empirical { values, cumulative }
    }

    /// The distinct values in this distribution.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Sample for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.unit_f64();
        let idx = self
            .cumulative
            .partition_point(|&c| c <= u)
            .min(self.values.len() - 1);
        self.values[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(d: &impl Sample, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_matches() {
        let m = mean_of(&Exp::new(2.5), 1, 200_000);
        assert!((m - 2.5).abs() < 0.05, "mean = {m}");
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Normal::new(10.0, 3.0);
        let m = mean_of(&d, 2, 200_000);
        assert!((m - 10.0).abs() < 0.05, "mean = {m}");
        let mut rng = SimRng::new(3);
        let var: f64 = (0..200_000)
            .map(|_| {
                let x = d.sample(&mut rng) - 10.0;
                x * x
            })
            .sum::<f64>()
            / 200_000.0;
        assert!((var.sqrt() - 3.0).abs() < 0.05, "sd = {}", var.sqrt());
    }

    #[test]
    fn pareto_respects_scale() {
        let d = Pareto::new(1.5, 2.0);
        let mut rng = SimRng::new(4);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 1.5);
        }
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::from_median(0.13, 0.5);
        let mut rng = SimRng::new(5);
        let mut xs: Vec<f64> = (0..50_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[25_000];
        assert!((med - 0.13).abs() < 0.01, "median = {med}");
    }

    #[test]
    fn empirical_frequencies() {
        let d = Empirical::new(&[(0.0, 1.0), (0.5, 3.0)]);
        let mut rng = SimRng::new(6);
        let n = 100_000;
        let halves = (0..n).filter(|_| d.sample(&mut rng) == 0.5).count();
        let frac = halves as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn empirical_single_value() {
        let d = Empirical::new(&[(7.0, 1.0)]);
        let mut rng = SimRng::new(7);
        assert_eq!(d.sample(&mut rng), 7.0);
    }

    #[test]
    fn sample_duration_clamps_negative() {
        let d = Normal::new(-100.0, 0.1);
        let mut rng = SimRng::new(8);
        assert_eq!(d.sample_duration(&mut rng), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn empirical_empty_panics() {
        Empirical::new(&[]);
    }
}
