//! Extension experiment (paper §2.1 / §5.3): wakeup batching ablation.
//!
//! Measures CPU wakeups per second for the idle Linux desktop under:
//! the always-ticking baseline, dynticks, dynticks + round_jiffies on
//! every periodic, dynticks + deferrable periodics, and both — plus the
//! idealised coalescer over flexible TimeSpecs.

use adaptive::{Coalescer, TimeSpec};
use linuxsim::{LinuxConfig, LinuxKernel};
use simtime::{SimDuration, SimInstant, SimRng};
use trace::NullSink;

fn run(dynticks: bool, round: bool, defer: bool) -> f64 {
    let cfg = LinuxConfig {
        seed: 7,
        dynticks,
        round_all_periodics: round,
        defer_all_periodics: defer,
        ..LinuxConfig::default()
    };
    let mut k = LinuxKernel::new(cfg, Box::new(NullSink));
    k.set_idle(true);
    let secs = 300;
    k.advance_to(SimInstant::BOOT + SimDuration::from_secs(secs));
    k.cpu().wakeups() as f64 / secs as f64
}

fn main() {
    println!("=== Idle-system wakeup ablation (paper 2.1 / 5.3) ===\n");
    println!("configuration                              wakeups/s");
    println!("----------------------------------------------------");
    let base = run(false, false, false);
    println!("periodic tick (HZ=250), no dynticks        {base:>9.1}");
    let dt = run(true, false, false);
    println!("dynticks                                   {dt:>9.1}");
    let dtr = run(true, true, false);
    println!("dynticks + round_jiffies on periodics      {dtr:>9.1}");
    let dtd = run(true, false, true);
    println!("dynticks + deferrable periodics            {dtd:>9.1}");
    let all = run(true, true, true);
    println!("dynticks + round_jiffies + deferrable      {all:>9.1}");

    // The idealised 5.3 design: flexible TimeSpecs + minimal coalescing.
    let mut c = Coalescer::new();
    let mut rng = SimRng::new(7);
    let boot = SimInstant::BOOT;
    // The idle housekeeping population over 60 s, all flexible to +-50%.
    let periods_ms: [(u64, &str); 8] = [
        (1000, "workqueue"),
        (2000, "workqueue2"),
        (5000, "writeback"),
        (500, "clocksource"),
        (248, "usb"),
        (5000, "pkt_sched"),
        (2000, "e1000"),
        (5000, "init"),
    ];
    let mut id = 0u64;
    for &(period, _) in &periods_ms {
        let mut t = period;
        while t < 60_000 {
            let slack = period / 2;
            c.add(
                id,
                TimeSpec::Window {
                    earliest: boot + SimDuration::from_millis(t.saturating_sub(slack)),
                    latest: boot + SimDuration::from_millis(t + slack),
                },
            );
            id += 1;
            t += period;
        }
    }
    let _ = &mut rng;
    let plan = c.plan(boot + SimDuration::from_secs(120));
    let coalesced = plan.len() as f64 / 60.0;
    let naive = c.naive_wakeup_count() as f64 / 60.0;
    println!("ideal: flexible TimeSpec + coalescer       {coalesced:>9.1}   (vs {naive:.1} naive)");
    println!(
        "\nreduction from baseline to full batching: {:.0}x",
        base / all.max(0.01)
    );
}
