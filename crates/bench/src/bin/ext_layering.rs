//! Extension experiment (paper §2.2.2 / §5.2): the layered-timeout
//! cascade, and what dependency tracking saves.
//!
//! A user mistypes a server name in the file browser. Name lookups race
//! with per-provider timeouts; then SMB/NFS/WebDAV connection attempts
//! race, with NFS-over-SunRPC retrying refused connections 7 times from
//! 500 ms with doubling. The paper: "recovering from a typing error can
//! take over a minute!"

use adaptive::deps::{DepGraph, OverlapKind, Relation};
use adaptive::usecase::{guard_registry, guard_stats, TimeoutGuard};
use netsim::rpc::{sunrpc_retry_loop, AttemptOutcome};
use netsim::{LookupService, ServiceBehavior};
use simtime::{SimDuration, SimInstant, SimRng};

fn main() {
    let mut rng = SimRng::new(7);
    println!("=== The layered-timeout cascade (paper 2.2.2) ===\n");

    // Phase 1: parallel name lookups for a mistyped name.
    let wins = LookupService::new("WINS", ServiceBehavior::Silent);
    let dns = LookupService::new("DNS", ServiceBehavior::Silent);
    let lookup_timeout = SimDuration::from_secs(5);
    let w = wins.attempt(lookup_timeout, &mut rng);
    let d = dns.attempt(lookup_timeout, &mut rng);
    let phase1 = match (w, d) {
        (AttemptOutcome::TimedOut(a), AttemptOutcome::TimedOut(b)) => a.max(b),
        _ => SimDuration::ZERO,
    };
    println!("phase 1 - WINS/DNS lookups (5 s each, parallel): {phase1}");

    // Suppose a stale broadcast answer lets it continue: the file
    // protocols race next against the dead host.
    let smb = LookupService::new(
        "SMB",
        ServiceBehavior::Refused {
            latency: SimDuration::from_millis(2),
        },
    );
    let webdav = LookupService::new("WebDAV", ServiceBehavior::Silent);
    let nfs = LookupService::new(
        "NFS",
        ServiceBehavior::Refused {
            latency: SimDuration::from_millis(2),
        },
    );
    // SMB: its own 30 s connect timeout ends on the refusal-retry budget.
    let smb_time = SimDuration::from_secs(9); // 3 refused syn retries.
    let _ = smb.attempt(SimDuration::from_secs(30), &mut rng);
    // WebDAV: waits out its full 30 s.
    let webdav_time = match webdav.attempt(SimDuration::from_secs(30), &mut rng) {
        AttemptOutcome::TimedOut(t) => t,
        _ => SimDuration::ZERO,
    };
    // NFS over SunRPC: 7 refused retries with doubling 500 ms timeouts.
    let (outcome, nfs_time) = sunrpc_retry_loop(&nfs, SimDuration::from_millis(500), 7, &mut rng);
    println!("phase 2 - SMB refused-retry budget:  {smb_time}");
    println!("phase 2 - WebDAV full timeout:       {webdav_time}");
    println!("phase 2 - NFS SunRPC backoff ({outcome:?}): {nfs_time}");
    let phase2 = smb_time.max(webdav_time).max(nfs_time);
    let total = phase1 + phase2;
    println!("\nuser-visible failure latency: {total}");
    assert!(total > SimDuration::from_secs(60));
    println!("=> 'recovering from a typing error can take over a minute!' reproduced\n");

    // What dependency tracking (5.2) and nested-guard elision (5.4) fix.
    println!("=== With timeout provenance and dependency tracking (paper 5.2/5.4) ===\n");
    let mut g = DepGraph::new();
    let boot = SimInstant::BOOT;
    let s = |secs| boot + SimDuration::from_secs(secs);
    g.declare(1, "shell:open_server", boot, s(120));
    g.declare(2, "mup:name_lookup", boot, s(5));
    g.declare(3, "smb:connect", boot, s(30));
    g.declare(4, "nfs:sunrpc", boot, s(64));
    g.declare(5, "webdav:connect", boot, s(30));
    g.relate(1, 2, Relation::DependsOn);
    g.relate(1, 3, Relation::Overlaps(OverlapKind::MinMatters));
    g.relate(1, 4, Relation::Overlaps(OverlapKind::MinMatters));
    g.relate(1, 5, Relation::Overlaps(OverlapKind::MinMatters));
    println!(
        "timers armed without tracking: 5; with elision rules: {}",
        g.required_armed().len()
    );
    println!("provenance of the NFS timer: {:?}", g.trace_path(4));

    // Nested RAII guards: the inner 30 s attempts are pointless under a
    // tight outer deadline.
    let reg = guard_registry();
    let outer = TimeoutGuard::arm(&reg, boot, SimDuration::from_secs(10));
    {
        let _lookup = TimeoutGuard::arm(&reg, boot, SimDuration::from_secs(5));
        let _smb = TimeoutGuard::arm(&reg, boot, SimDuration::from_secs(30));
        let _nfs = TimeoutGuard::arm(&reg, boot, SimDuration::from_secs(64));
    }
    let stats = guard_stats(&reg);
    println!(
        "nested guards under a 10 s user deadline: {} armed, {} elided",
        stats.armed, stats.elided
    );
    println!(
        "user now sees the failure at the outer deadline: {}",
        outer.deadline()
    );
}
