//! Figures 8-11: timeout expiry/cancellation scatter plots.
use timerstudy::experiment::{repro_duration, run_table_workloads};
use timerstudy::{figures, Os};

fn main() {
    let started = std::time::Instant::now();
    let duration = repro_duration();
    let linux = run_table_workloads(Os::Linux, duration, 7);
    let vista = run_table_workloads(Os::Vista, duration, 7);
    for (i, (l, v)) in linux.iter().zip(vista.iter()).enumerate() {
        println!("{}", figures::fig_scatter(l, v, 8 + i as u32).printable());
    }
    bench::print_stage_summary("fig08_11", linux.iter().chain(vista.iter()), started);
}
