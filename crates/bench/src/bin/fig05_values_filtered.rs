//! Figure 5: common Linux timeout values, X/icewm filtered.
use timerstudy::experiment::{repro_duration, run_table_workloads};
use timerstudy::{figures, Os};

fn main() {
    let started = std::time::Instant::now();
    let results = run_table_workloads(Os::Linux, repro_duration(), 7);
    println!("{}", figures::fig05(&results).printable());
    bench::print_stage_summary("fig05", &results, started);
}
