//! Figure 6: common Linux syscall timer values.
use timerstudy::experiment::{repro_duration, run_table_workloads};
use timerstudy::{figures, Os};

fn main() {
    let started = std::time::Instant::now();
    let results = run_table_workloads(Os::Linux, repro_duration(), 7);
    println!("{}", figures::fig06(&results).printable());
    bench::print_stage_summary("fig06", &results, started);
}
