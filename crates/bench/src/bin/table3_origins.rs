//! Table 3: origins and classification of frequent Linux timeout values.
use timerstudy::experiment::{repro_duration, run_table_workloads};
use timerstudy::{figures, Os};

fn main() {
    let started = std::time::Instant::now();
    let results = run_table_workloads(Os::Linux, repro_duration(), 7);
    println!("{}", figures::table3(&results).printable());
    bench::print_stage_summary("table3", &results, started);
}
