//! The recorded performance trajectory: one bin, every hot path.
//!
//! Criterion gives interactive statistics, but nothing in the repo
//! remembered how fast the hot paths *were* — so regressions could land
//! silently. This bin times a fixed micro-suite (timer-queue structures,
//! flat and sharded; the streaming-analysis event path) with hand-rolled
//! best-of-N wall timing and emits a `{name: ns_per_op}` map:
//!
//! - `bench_all --write[=PATH]` records the baseline (default
//!   `BENCH_baseline.json`, committed at the repo root);
//! - `bench_all --check[=PATH]` re-runs the suite and fails (exit 1) if
//!   any benchmark runs slower than the recorded baseline by more than
//!   the tolerance factor — loose (8×) because CI machines differ from
//!   the machine that recorded the baseline; the gate is for
//!   order-of-magnitude regressions (an accidental O(n²), a lost cache),
//!   not percent-level noise. The rows the zero-copy refactor sped up
//!   ≥2× carry a tighter 2× gate: their baseline was re-recorded after
//!   the speedup, so even at 2× the gate holds the *old* cost as a hard
//!   ceiling — losing the columnar dispatch, the fast hasher or the
//!   arena would trip it on any machine;
//! - with no flag it just prints the table.

use std::collections::BTreeMap;
use std::time::Instant;

use simtime::SimRng;
use wheel::{Backend, TimerQueue};

/// A slower-than-baseline run fails `--check` past this factor.
const TOLERANCE: f64 = 8.0;
/// Rows pinned at 2×: each was made ≥2× faster by the zero-copy hot-path
/// work and re-baselined, so 2× here ≈ the pre-refactor absolute cost.
const TIGHT_ROWS: [&str; 3] = ["analysis_chunk", "queue_mix/hashed", "queue_mix/sortedlist"];
const TIGHT_TOLERANCE: f64 = 2.0;
const DEFAULT_PATH: &str = "BENCH_baseline.json";

/// The `--check` tolerance for one row.
fn tolerance_of(name: &str) -> f64 {
    if TIGHT_ROWS.contains(&name) {
        TIGHT_TOLERANCE
    } else {
        TOLERANCE
    }
}

/// Best-of-N wall time for `f`, which performs `ops` operations per
/// call. One untimed warmup call amortises allocator and cache effects.
fn time_ns_per_op(ops: u64, mut f: impl FnMut() -> u64) -> f64 {
    let mut sink = f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        sink = sink.wrapping_add(f());
        let elapsed = started.elapsed().as_nanos() as f64;
        best = best.min(elapsed / ops as f64);
    }
    // Keep the side effect alive without `black_box`.
    if sink == u64::MAX {
        eprintln!("(unreachable sink note)");
    }
    best
}

fn queue(backend: Backend) -> Box<dyn TimerQueue> {
    backend.build(Backend::Hierarchical, 256)
}

/// Schedule-then-drain on one backend: the simulator's dominant mix.
fn bench_queue_mix(backend: Backend) -> f64 {
    const N: u64 = 32_768;
    time_ns_per_op(2 * N, || {
        let mut q = queue(backend);
        let mut rng = SimRng::new(1);
        for i in 0..N {
            q.schedule(i, 1 + rng.range_u64(0, 100_000));
        }
        let mut fired = 0u64;
        q.advance_to(100_001, &mut |_, _| fired += 1);
        fired
    })
}

/// The cross-base migration path: every re-arm comes from a rotated CPU.
fn bench_sharded_migrate(shards: u16) -> f64 {
    const N: u64 = 8_192;
    const ROUNDS: u64 = 8;
    time_ns_per_op(N * ROUNDS, || {
        let mut q = queue(Backend::Hierarchical.with_shards(shards));
        let mut rng = SimRng::new(1);
        for i in 0..N {
            q.schedule(i, 1 + rng.range_u64(0, 100_000));
        }
        for round in 0..ROUNDS {
            for i in 0..N {
                q.set_context_cpu(Some(((i + round) % shards.max(1) as u64) as u32));
                q.schedule(i, 200_000 + round);
            }
        }
        q.len() as u64
    })
}

/// The streaming analyzer's per-event cost on a synthetic trace chunk.
fn bench_analysis_chunk() -> f64 {
    use analysis::EventVisitor;
    use trace::{Event, EventKind};
    const N: u64 = 65_536;
    let origin = {
        let mut log = trace::TraceLog::new(Box::new(trace::NullSink));
        log.intern("bench:origin")
    };
    let events: Vec<Event> = (0..N)
        .map(|i| {
            let at = simtime::SimInstant::BOOT + simtime::SimDuration::from_micros(i * 7);
            Event::new(at, EventKind::Set, i % 512, origin)
                .with_expires(at + simtime::SimDuration::from_millis(1 + i % 90))
                .with_task(100, 100, trace::Space::User)
        })
        .collect();
    time_ns_per_op(N, || {
        let mut analyzer = analysis::TraceAnalyzer::new(analysis::AnalyzerConfig::linux());
        for chunk in events.chunks(4096) {
            analyzer.visit_chunk(chunk);
        }
        events.len() as u64
    })
}

/// The attribution tracker's per-event fold cost — the provenance
/// tables the run report carries per experiment.
fn bench_attribution_fold() -> f64 {
    use trace::{Event, EventKind};
    const N: u64 = 65_536;
    let events: Vec<Event> = (0..N)
        .map(|i| {
            let at = simtime::SimInstant::BOOT + simtime::SimDuration::from_micros(i * 7);
            let origin = (i % 24) as u32;
            match i % 3 {
                0 => Event::new(at, EventKind::Set, i % 512, origin)
                    .with_timeout(simtime::SimDuration::from_millis(1 + i % 90))
                    .with_expires(at + simtime::SimDuration::from_millis(1 + i % 90)),
                1 => Event::new(at, EventKind::Expire, i % 512, origin)
                    .with_expires(at - simtime::SimDuration::from_micros(i % 900)),
                _ => Event::new(at, EventKind::Cancel, i % 512, origin),
            }
        })
        .collect();
    time_ns_per_op(N, || {
        let mut tracker = analysis::AttributionTracker::new();
        tracker.push_chunk(&events);
        tracker.origin_count() as u64
    })
}

/// The conservative parallel DES engine on the fixed-total-work heavy
/// calendar: the same timer population at every width, so `des_pdes/8`
/// vs `des_pdes/1` is the engine's measured scaling.
fn bench_des_pdes(partitions: u32) -> f64 {
    use bench::pdes_scenario;
    time_ns_per_op(pdes_scenario::TOTAL_TIMERS, || {
        let (checksum, events) = pdes_scenario::run(partitions);
        checksum ^ events
    })
}

fn run_suite() -> BTreeMap<String, f64> {
    let mut results = BTreeMap::new();
    for backend in Backend::FORCED {
        results.insert(
            format!("queue_mix/{}", backend.label()),
            bench_queue_mix(backend),
        );
    }
    for shards in [1u16, 4, 8] {
        results.insert(
            format!(
                "queue_mix/{}",
                Backend::Hierarchical.with_shards(shards).label()
            ),
            bench_queue_mix(Backend::Hierarchical.with_shards(shards)),
        );
        results.insert(
            format!("sharded_migrate/{shards}"),
            bench_sharded_migrate(shards),
        );
    }
    results.insert("analysis_chunk".to_string(), bench_analysis_chunk());
    results.insert("attribution_fold".to_string(), bench_attribution_fold());
    for partitions in [1u32, 2, 4, 8] {
        results.insert(format!("des_pdes/{partitions}"), bench_des_pdes(partitions));
    }
    results
}

fn to_json(results: &BTreeMap<String, f64>) -> String {
    // Round to 0.1 ns so re-recorded baselines diff cleanly.
    let mut out = String::from("{\n");
    let mut first = true;
    for (name, ns) in results {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("  \"{name}\": {:.1}", ns));
    }
    out.push_str("\n}\n");
    out
}

/// Parses the flat `{ "name": ns, ... }` object [`to_json`] emits. Names
/// may contain `:` (backend labels), so the split point is the colon
/// *after* the closing quote, not the first one on the line.
fn parse_baseline(text: &str) -> Option<BTreeMap<String, f64>> {
    let body = text.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut out = BTreeMap::new();
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        let rest = line.strip_prefix('"')?;
        let (name, value) = rest.split_once('"')?;
        let ns: f64 = value.trim().strip_prefix(':')?.trim().parse().ok()?;
        out.insert(name.to_string(), ns);
    }
    Some(out)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_path = |flag: &str| -> Option<String> {
        args.iter().find_map(|a| {
            if a == flag {
                Some(DEFAULT_PATH.to_string())
            } else {
                a.strip_prefix(&format!("{flag}=")).map(str::to_owned)
            }
        })
    };
    let write = flag_path("--write");
    let check = flag_path("--check");

    eprintln!("running the bench_all micro-suite...");
    let results = run_suite();
    for (name, ns) in &results {
        println!("{name}: {ns:.1} ns/op");
    }

    if let Some(path) = write {
        std::fs::write(&path, to_json(&results)).expect("write baseline");
        eprintln!("baseline written to {path}");
    }
    if let Some(path) = check {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let baseline = parse_baseline(&text).expect("baseline is a {name: ns} JSON object");
        let mut failed = false;
        for (name, &ns) in &results {
            let tolerance = tolerance_of(name);
            match baseline.get(name) {
                Some(&base) if ns > base * tolerance => {
                    eprintln!(
                        "FAIL: {name} regressed {:.1}x over baseline \
                         ({ns:.1} vs {base:.1} ns/op, gate {tolerance}x)",
                        ns / base
                    );
                    failed = true;
                }
                Some(&base) => {
                    eprintln!(
                        "ok: {name} {ns:.1} ns/op (baseline {base:.1}, {:.2}x, gate {tolerance}x)",
                        ns / base
                    );
                }
                None => {
                    eprintln!("note: {name} has no baseline entry; re-record with --write");
                }
            }
        }
        for name in baseline.keys() {
            if !results.contains_key(name) {
                eprintln!("FAIL: baseline entry {name} no longer benchmarked");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "bench_all: all {} benchmarks within tolerance \
             ({TIGHT_TOLERANCE}x on refactored rows, {TOLERANCE}x elsewhere)",
            results.len()
        );
    }
}
