//! Table 2: Vista trace summary for the four workloads.
use timerstudy::experiment::{repro_duration, run_table_workloads};
use timerstudy::{figures, Os};

fn main() {
    let started = std::time::Instant::now();
    let results = run_table_workloads(Os::Vista, repro_duration(), 7);
    println!("{}", figures::table2(&results).printable());
    bench::print_stage_summary("table2", &results, started);
}
