//! Extension experiment (paper §5.1): adaptive vs fixed timeouts.
//!
//! A client calls a service whose response latency is log-normal around
//! 130 ms (the paper's file-server RTT). Occasionally the service dies.
//! We measure, for a fixed 30 s timeout (the paper's title number) and
//! the confidence-based adaptive timeout: failure-detection latency and
//! spurious-timeout rate — and what happens across a LAN→WAN level shift.

use adaptive::AdaptiveTimeout;
use simtime::{LogNormal, Sample, SimDuration, SimRng};

fn main() {
    let mut rng = SimRng::new(7);
    let lan = LogNormal::from_median(0.0008, 0.4); // LAN file server.
    let wan = LogNormal::from_median(0.130, 0.4); // Same server via WAN.

    println!("=== Adaptive vs fixed timeouts (paper 5.1) ===\n");
    println!("workload: 50000 requests, 0.2% of them hit a dead server\n");

    for (name, dist) in [("LAN (0.8 ms median)", &lan), ("WAN (130 ms median)", &wan)] {
        let fixed = SimDuration::from_secs(30);
        let mut est = AdaptiveTimeout::new(0.99, fixed);
        let mut fixed_detect = SimDuration::ZERO;
        let mut adaptive_detect = SimDuration::ZERO;
        let mut failures = 0u64;
        let mut spurious = 0u64;
        let mut requests = 0u64;
        for _ in 0..50_000 {
            requests += 1;
            let timeout = est.timeout();
            if rng.chance(0.002) {
                // Dead server: the caller waits out its whole timeout.
                failures += 1;
                fixed_detect += fixed;
                adaptive_detect += timeout;
                est.observe_timeout();
            } else {
                let latency = dist.sample_duration(&mut rng);
                if latency >= timeout {
                    // Adaptive timeout fired although the answer was
                    // coming — a spurious timeout.
                    spurious += 1;
                    est.observe_timeout();
                } else {
                    est.observe_success(latency);
                }
            }
        }
        let fd = fixed_detect.as_secs_f64() / failures.max(1) as f64;
        let ad = adaptive_detect.as_secs_f64() / failures.max(1) as f64;
        println!("--- {name} ---");
        println!("  mean failure detection, fixed 30 s : {fd:>9.3} s");
        println!(
            "  mean failure detection, adaptive   : {ad:>9.3} s  ({:.0}x faster)",
            fd / ad.max(1e-9)
        );
        println!(
            "  spurious timeouts: {spurious} / {requests} ({:.3}%)",
            100.0 * spurious as f64 / requests as f64
        );
        println!("  learned timeout after run: {}\n", est.timeout());
    }

    // Level shift: learn on the LAN, then move to the WAN.
    println!("--- level shift: laptop moves from LAN to WAN (paper 5.1) ---");
    let mut est = AdaptiveTimeout::new(0.99, SimDuration::from_secs(30));
    for _ in 0..20_000 {
        est.observe_success(lan.sample_duration(&mut rng));
    }
    println!("  timeout learned on LAN: {}", est.timeout());
    let mut timeouts_before_adapting = 0u64;
    for _ in 0..200 {
        let latency = wan.sample_duration(&mut rng);
        if latency >= est.timeout() {
            timeouts_before_adapting += 1;
            est.observe_timeout();
        } else {
            est.observe_success(latency);
        }
    }
    println!(
        "  WAN requests spuriously timed out while re-learning: {timeouts_before_adapting} / 200"
    );
    println!("  timeout after re-learning on WAN: {}", est.timeout());
    println!("  level-shift resets performed: {}", est.resets());
}
