//! Table 1: Linux trace summary for the four workloads.
use timerstudy::experiment::{repro_duration, run_table_workloads};
use timerstudy::{figures, Os};

fn main() {
    let started = std::time::Instant::now();
    let results = run_table_workloads(Os::Linux, repro_duration(), 7);
    println!("{}", figures::table1(&results).printable());
    bench::print_stage_summary("table1", &results, started);
}
