//! Figure 2: common Linux timer usage patterns, with an optional
//! `--sweep` of the classifier's jitter tolerance (a DESIGN.md ablation).
use analysis::PatternClass;
use timerstudy::experiment::{
    analyzer_config, repro_duration, run_experiment_with, run_table_workloads,
};
use timerstudy::{figures, ExperimentSpec, Os, Workload};

fn main() {
    let started = std::time::Instant::now();
    let duration = repro_duration();
    let results = run_table_workloads(Os::Linux, duration, 7);
    println!("{}", figures::fig02(&results).printable());
    bench::print_stage_summary("fig02", &results, started);
    if std::env::args().any(|a| a == "--sweep") {
        println!("=== jitter-tolerance sensitivity (Idle workload) ===");
        for tol_us in [100u64, 500, 2_000, 8_000] {
            let mut cfg = analyzer_config(Os::Linux, Workload::Idle);
            cfg.tolerance = simtime::SimDuration::from_micros(tol_us);
            let result = run_experiment_with(
                ExperimentSpec::new(Os::Linux, Workload::Idle, duration, 7),
                cfg,
            );
            println!(
                "tolerance {:>5} us: periodic {:>5.1}%  watchdog {:>5.1}%  timeout {:>5.1}%  other {:>5.1}%",
                tol_us,
                result.report.pattern_mix.percent(PatternClass::Periodic),
                result.report.pattern_mix.percent(PatternClass::Watchdog),
                result.report.pattern_mix.percent(PatternClass::Timeout),
                result.report.pattern_mix.percent(PatternClass::Other),
            );
        }
        println!("(the paper's experimentally determined tolerance is 2 ms)");
    }
}
