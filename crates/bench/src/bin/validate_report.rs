//! Validates telemetry run reports written by `repro_all --metrics`.
//!
//! * `validate_report FILE` — parses FILE and checks it against the run
//!   report schema (version, required sections, every sim-plane metric
//!   present with integer values).
//! * `validate_report --assert-sim-equal A B` — additionally asserts the
//!   two reports' `sim` sections are identical after canonicalisation.
//!   This is the CI drift check: two runs of the same parameters must
//!   agree on the sim plane regardless of thread count or cache state,
//!   while their wall planes are allowed (expected) to differ.

use telemetry::json;
use telemetry::report::{sim_section_canonical, validate_value};

fn load(path: &str) -> json::Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: cannot read: {e}");
        std::process::exit(1);
    });
    let value = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}: invalid JSON: {e}");
        std::process::exit(1);
    });
    if let Err(e) = validate_value(&value) {
        eprintln!("{path}: schema violation: {e}");
        std::process::exit(1);
    }
    value
}

fn sim_canonical(path: &str, value: &json::Value) -> String {
    sim_section_canonical(value).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [path] if path != "--assert-sim-equal" => {
            load(path);
            eprintln!("{path}: schema-valid run report");
        }
        [flag, a, b] if flag == "--assert-sim-equal" => {
            let va = load(a);
            let vb = load(b);
            let ca = sim_canonical(a, &va);
            let cb = sim_canonical(b, &vb);
            if ca != cb {
                eprintln!("sim-plane drift between {a} and {b}:");
                eprintln!("  {a}: {} canonical bytes", ca.len());
                eprintln!("  {b}: {} canonical bytes", cb.len());
                let diverge = ca
                    .bytes()
                    .zip(cb.bytes())
                    .position(|(x, y)| x != y)
                    .unwrap_or(ca.len().min(cb.len()));
                let start = diverge.saturating_sub(40);
                eprintln!(
                    "  first divergence at byte {diverge}:\n    {a}: ...{}\n    {b}: ...{}",
                    &ca[start..(diverge + 40).min(ca.len())],
                    &cb[start..(diverge + 40).min(cb.len())],
                );
                std::process::exit(1);
            }
            eprintln!(
                "{a} and {b}: sim planes identical ({} canonical bytes)",
                ca.len()
            );
        }
        _ => {
            eprintln!("usage: validate_report FILE");
            eprintln!("       validate_report --assert-sim-equal FILE1 FILE2");
            std::process::exit(2);
        }
    }
}
