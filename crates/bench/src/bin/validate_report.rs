//! Validates telemetry run reports written by `repro_all --metrics`.
//!
//! * `validate_report FILE` — parses FILE and checks it against the run
//!   report schema (version, required sections, every sim-plane metric
//!   present with integer values, every experiment's attribution table
//!   well-formed).
//! * `validate_report --assert-sim-equal A B` — additionally asserts the
//!   two reports' `sim` sections are identical after canonicalisation.
//!   This is the CI drift check: two runs of the same parameters must
//!   agree on the sim plane regardless of thread count or cache state,
//!   while their wall planes are allowed (expected) to differ.
//! * `validate_report --assert-attr-equal A B` — asserts the two
//!   reports' per-experiment attribution sections are identical. Unlike
//!   the full sim section (whose wheel counters are backend-specific:
//!   cascades vs revisits vs migrations), attribution is invariant
//!   across `--wheel-backend` and `--shards` choices, so this check
//!   holds across a backend pair where `--assert-sim-equal` cannot.
//! * `validate_report --chrome FILE` — checks a Chrome trace-event
//!   profile (`run_trace.chrome.json`) for well-formedness: valid JSON,
//!   a `traceEvents` array, every `B` matched by an `E` on the same
//!   thread, and per-thread timestamps monotonically non-decreasing.

use telemetry::json;
use telemetry::report::{attr_section_canonical, sim_section_canonical, validate_value};

fn load(path: &str) -> json::Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: cannot read: {e}");
        std::process::exit(1);
    });
    let value = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}: invalid JSON: {e}");
        std::process::exit(1);
    });
    if let Err(e) = validate_value(&value) {
        eprintln!("{path}: schema violation: {e}");
        std::process::exit(1);
    }
    value
}

fn sim_canonical(path: &str, value: &json::Value) -> String {
    sim_section_canonical(value).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    })
}

fn attr_canonical(path: &str, value: &json::Value) -> String {
    attr_section_canonical(value).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    })
}

/// Reports the first byte where two canonical renderings diverge.
fn assert_equal(what: &str, a: &str, b: &str, ca: &str, cb: &str) {
    if ca != cb {
        eprintln!("{what} drift between {a} and {b}:");
        eprintln!("  {a}: {} canonical bytes", ca.len());
        eprintln!("  {b}: {} canonical bytes", cb.len());
        let diverge = ca
            .bytes()
            .zip(cb.bytes())
            .position(|(x, y)| x != y)
            .unwrap_or(ca.len().min(cb.len()));
        let start = diverge.saturating_sub(40);
        eprintln!(
            "  first divergence at byte {diverge}:\n    {a}: ...{}\n    {b}: ...{}",
            &ca[start..(diverge + 40).min(ca.len())],
            &cb[start..(diverge + 40).min(cb.len())],
        );
        std::process::exit(1);
    }
    eprintln!(
        "{a} and {b}: {what}s identical ({} canonical bytes)",
        ca.len()
    );
}

/// Validates a Chrome trace-event file: balanced `B`/`E` per thread and
/// monotone per-thread timestamps. `M` (metadata) and `C` (counter)
/// events are allowed anywhere.
fn check_chrome(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: cannot read: {e}");
        std::process::exit(1);
    });
    let value = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}: invalid JSON: {e}");
        std::process::exit(1);
    });
    let Some(events) = value.get("traceEvents").and_then(json::Value::as_arr) else {
        eprintln!("{path}: missing traceEvents array");
        std::process::exit(1);
    };
    let mut depth: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    let mut spans = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(json::Value::as_str)
            .unwrap_or_else(|| {
                eprintln!("{path}: event {i} has no ph");
                std::process::exit(1);
            });
        match ph {
            "M" | "C" => continue,
            "B" | "E" => {}
            other => {
                eprintln!("{path}: event {i} has unexpected phase {other:?}");
                std::process::exit(1);
            }
        }
        let tid = ev
            .get("tid")
            .and_then(json::Value::as_u64)
            .unwrap_or_else(|| {
                eprintln!("{path}: event {i} has no tid");
                std::process::exit(1);
            });
        let ts = ev
            .get("ts")
            .and_then(json::Value::as_f64)
            .unwrap_or_else(|| {
                eprintln!("{path}: event {i} has no numeric ts");
                std::process::exit(1);
            });
        let prev = last_ts.insert(tid, ts).unwrap_or(f64::MIN);
        if ts < prev {
            eprintln!("{path}: event {i}: ts {ts} < previous {prev} on tid {tid}");
            std::process::exit(1);
        }
        let d = depth.entry(tid).or_insert(0);
        *d += if ph == "B" { 1 } else { -1 };
        if *d < 0 {
            eprintln!("{path}: event {i}: E without matching B on tid {tid}");
            std::process::exit(1);
        }
        if ph == "B" {
            spans += 1;
        }
    }
    for (tid, d) in &depth {
        if *d != 0 {
            eprintln!("{path}: tid {tid} ends with {d} unclosed B event(s)");
            std::process::exit(1);
        }
    }
    eprintln!(
        "{path}: well-formed Chrome trace ({spans} spans across {} thread(s))",
        depth.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [path] if !path.starts_with("--") => {
            load(path);
            eprintln!("{path}: schema-valid run report");
        }
        [flag, a, b] if flag == "--assert-sim-equal" => {
            let va = load(a);
            let vb = load(b);
            let ca = sim_canonical(a, &va);
            let cb = sim_canonical(b, &vb);
            assert_equal("sim-plane", a, b, &ca, &cb);
        }
        [flag, a, b] if flag == "--assert-attr-equal" => {
            let va = load(a);
            let vb = load(b);
            let ca = attr_canonical(a, &va);
            let cb = attr_canonical(b, &vb);
            assert_equal("attribution section", a, b, &ca, &cb);
        }
        [flag, path] if flag == "--chrome" => {
            check_chrome(path);
        }
        _ => {
            eprintln!("usage: validate_report FILE");
            eprintln!("       validate_report --assert-sim-equal FILE1 FILE2");
            eprintln!("       validate_report --assert-attr-equal FILE1 FILE2");
            eprintln!("       validate_report --chrome TRACE_FILE");
            std::process::exit(2);
        }
    }
}
