//! Reproduces every table and figure of the paper in one run.
//!
//! Full 30-minute traces by default; set `REPRO_SECONDS` to scale down.
//! The nine distinct experiments run in parallel through the experiment
//! cache (thread count: `REPRO_THREADS`, default = available cores);
//! `--serial` forces the uncached single-threaded reference path, which
//! produces bit-identical output. With `--artifacts DIR`, each artifact
//! is also written to `DIR` as a text rendering plus CSV data where
//! applicable. `--faults SPEC` attaches a deterministic fault plane to
//! every experiment (`SPEC` is a comma list of `drops[=PERMILLE]`,
//! `net-burst`, `clock-jitter`, `all`, `seed=N`); the summary tables then
//! gain drop/degradation accounting rows.
//!
//! `--metrics[=DIR]` (default `artifacts/metrics`) writes the telemetry
//! run report — `run_report.json` plus `run_report.prom` — aggregating
//! each experiment's sim-plane snapshot with this process's wall-plane
//! spans and counters, plus `run_trace.chrome.json`, a Chrome
//! trace-event profile of the run's stage spans (loadable in Perfetto /
//! `chrome://tracing`). The sim section — including the per-origin
//! attribution tables — is bit-identical across `--serial`, parallel
//! and cached runs of the same parameters; see the Observability
//! section of the README.
//!
//! `--top-origins[=N]` prints the paper-Table-3-style "top timer users"
//! table (default N = 10): per origin, total sets with expired/cancelled
//! percentages, folded from every experiment's attribution table.
//!
//! `--timer-list=SIM_SECS[,SIM_SECS...]` runs one dedicated, uncached
//! Linux and Vista webserver experiment and dumps a deterministic
//! `/proc/timer_list`-style snapshot of every simulated timer queue at
//! each requested sim instant. The pending `(expiry, id)` multiset per
//! queue is invariant across `--wheel-backend`/`--shards` choices.
//!
//! `--scale N` multiplies the trace duration by `N` (the webserver
//! workloads scale their connection counts with duration, so this is the
//! "10× longer Apache/httperf run" knob). `--collected` forces the
//! collect-everything oracle path — the whole trace resident as one
//! `Vec<Event>` before analysis — whose stdout must be byte-identical to
//! the streaming paths'. `--assert-peak-resident-below N` exits nonzero
//! if the `analysis_resident_events_high_watermark` gauge reached `N` or
//! more in any experiment (the CI bounded-memory check).
//!
//! `--wheel-backend NAME|all` forces every simulated subsystem's timer
//! queue onto one structure (`hierarchical`, `hashed`, `sortedlist`,
//! `heap`, `sharded[:N][:INNER]`; `native` keeps each kernel's
//! historical one). With `all`, the whole figure pipeline runs once per
//! backend — the four flat structures plus the sharded matrix — the
//! artifacts are asserted byte-identical to the native run's, and a
//! per-backend run summary with the wheel counters (`wheel_schedules`,
//! `wheel_cancels`, `wheel_cascades`) is printed — the cross-backend
//! equivalence matrix.
//!
//! `--shards N` splits every timer queue into `N` per-CPU bases (the
//! selected `--wheel-backend` structure, or the native one, becomes the
//! per-base inner structure). Sharding never changes the trace: the
//! artifacts are byte-identical across any `N`.
//!
//! `--des-threads N` runs every experiment through the conservative
//! parallel DES engine: the kernel streams its trace from one partition
//! while `N` scoped worker partitions fold the analysis, synchronised by
//! the engine's bounded channels. Artifacts and the sim-plane metrics
//! are byte-identical to the serial pipeline for every `N`; only the
//! wall-plane `des_*` counters (null messages, horizon stalls, per-
//! partition busy/idle) differ. Composes with `--faults`, `--shards`
//! and a single `--wheel-backend`; incompatible with `--serial`,
//! `--collected` and `--wheel-backend=all`.
//!
//! `--adaptive[=off|fixed|learned]` selects the workload-timeout policy
//! (the paper's §5 "timeouts should be learned"). `fixed` keeps every
//! historical constant with the adaptive plumbing live — its output is
//! byte-identical to the default run's, the plumbing-is-inert guarantee
//! CI `cmp`s. `learned` (what the bare flag means) runs every experiment
//! *twice* on the same seeded trace — historical constants vs learned
//! timeouts — and appends three counterfactual figures: spurious timer
//! expirations avoided per origin (riding the attribution plane), the
//! dynticks sleep-residency histogram (the energy proxy), and
//! retransmit-latency deltas (most visible under `--faults`). Composes
//! with `--faults`, `--shards`, `--des-threads` and `--wheel-backend`
//! (including `all`, which then asserts the counterfactual figures
//! byte-identical across every backend too); incompatible with
//! `--serial` and `--collected` (it runs on the cached parallel path).

use timerstudy::experiment::repro_duration;
use timerstudy::{Backend, FaultSpec};

const SEED: u64 = 7;

/// What `--wheel-backend` asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BackendMode {
    /// No flag: the native structures, via the default paths.
    Default,
    /// One forced backend for the whole pipeline.
    One(Backend),
    /// The full matrix: native plus every forced backend, with an
    /// artifact byte-identity assertion.
    All,
}

/// Parses `--wheel-backend NAME` / `--wheel-backend=NAME`.
fn backend_mode(args: &[String]) -> BackendMode {
    let value = args
        .iter()
        .position(|a| a == "--wheel-backend")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--wheel-backend=").map(str::to_owned))
        });
    match value.as_deref() {
        None => BackendMode::Default,
        Some("all") => BackendMode::All,
        Some(name) => match Backend::parse(name) {
            Some(b) => BackendMode::One(b),
            None => {
                eprintln!(
                    "--wheel-backend {name}: expected native, hierarchical, hashed, \
                     sortedlist, heap, sharded[:N][:INNER], or all"
                );
                std::process::exit(2);
            }
        },
    }
}

/// Parses `--des-threads N` / `--des-threads=N`.
fn des_threads(args: &[String]) -> Option<u16> {
    let value = args
        .iter()
        .position(|a| a == "--des-threads")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--des-threads=").map(str::to_owned))
        })?;
    match value.parse::<u16>() {
        Ok(n) if n >= 1 => Some(n),
        _ => {
            eprintln!("--des-threads {value}: expected an integer >= 1");
            std::process::exit(2);
        }
    }
}

/// Parses `--adaptive` / `--adaptive=off|fixed|learned` (bare flag means
/// `learned` — "run the counterfactual").
fn adaptive_policy(args: &[String]) -> adaptive::AdaptivePolicy {
    let mut policy = adaptive::AdaptivePolicy::Off;
    for arg in args {
        if arg == "--adaptive" {
            policy = adaptive::AdaptivePolicy::Learned;
        } else if let Some(v) = arg.strip_prefix("--adaptive=") {
            match adaptive::AdaptivePolicy::parse(v) {
                Some(p) => policy = p,
                None => {
                    eprintln!("--adaptive {v}: expected off, fixed, or learned");
                    std::process::exit(2);
                }
            }
        }
    }
    policy
}

/// Parses `--shards N` / `--shards=N`.
fn shard_count(args: &[String]) -> Option<u16> {
    let value = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--shards=").map(str::to_owned))
        })?;
    match value.parse::<u16>() {
        Ok(n) if n >= 1 => Some(n),
        _ => {
            eprintln!("--shards {value}: expected an integer >= 1");
            std::process::exit(2);
        }
    }
}

/// One backend's aggregated wheel counters, for the per-backend summary.
fn wheel_counter_summary(results: &[timerstudy::ExperimentResult]) -> String {
    use telemetry::SimCounter;
    let sum = |c: SimCounter| -> u64 { results.iter().map(|r| r.metrics.counter(c)).sum() };
    format!(
        "wheel_schedules={} wheel_cancels={} wheel_expirations={} wheel_cascades={}",
        sum(SimCounter::WheelSchedules),
        sum(SimCounter::WheelCancels),
        sum(SimCounter::WheelExpirations),
        sum(SimCounter::WheelCascades),
    )
}

/// Parses `--top-origins` / `--top-origins=N` (default 10).
fn top_origins(args: &[String]) -> Option<usize> {
    for arg in args {
        if arg == "--top-origins" {
            return Some(10);
        }
        if let Some(n) = arg.strip_prefix("--top-origins=") {
            match n.parse::<usize>() {
                Ok(n) if n >= 1 => return Some(n),
                _ => {
                    eprintln!("--top-origins {n}: expected an integer >= 1");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Parses `--timer-list=SECS[,SECS...]` into sim instants (nanoseconds).
fn timer_list_instants(args: &[String]) -> Option<Vec<u64>> {
    let value = args
        .iter()
        .position(|a| a == "--timer-list")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--timer-list=").map(str::to_owned))
        })?;
    let mut instants = Vec::new();
    for part in value.split(',') {
        // Accept fractional seconds ("1.5") exactly: split on the point
        // and scale the fraction digits, no float round-tripping.
        let part = part.trim();
        let (whole, frac) = part.split_once('.').unwrap_or((part, ""));
        let parsed = whole.parse::<u64>().ok().and_then(|secs| {
            if frac.is_empty() {
                Some(secs * 1_000_000_000)
            } else if frac.len() <= 9 && frac.chars().all(|c| c.is_ascii_digit()) {
                let scale = 10u64.pow(9 - frac.len() as u32);
                Some(secs * 1_000_000_000 + frac.parse::<u64>().unwrap() * scale)
            } else {
                None
            }
        });
        match parsed {
            Some(nanos) => instants.push(nanos),
            None => {
                eprintln!("--timer-list {value}: expected a comma list of sim seconds");
                std::process::exit(2);
            }
        }
    }
    instants.sort_unstable();
    instants.dedup();
    Some(instants)
}

/// Prints the paper-Table-3-style "top timer users" table from the
/// label-merged attribution tables of every experiment.
fn print_top_origins(results: &[timerstudy::ExperimentResult], n: usize) {
    let mut merged = telemetry::OriginTable::empty();
    for r in results {
        merged.merge(&r.report.attribution);
    }
    println!("Top timer users: top {n} origins by sets (all experiments)");
    println!(
        "{:<40} {:>12} {:>10} {:>11}",
        "origin", "sets", "expired%", "cancelled%"
    );
    for row in merged.top(n) {
        println!(
            "{:<40} {:>12} {:>9.1}% {:>10.1}%",
            row.label,
            row.sets,
            row.expiry_ratio() * 100.0,
            row.cancel_ratio() * 100.0
        );
    }
    println!();
}

/// Parses `--metrics` / `--metrics=DIR` into the report directory.
fn metrics_dir(args: &[String]) -> Option<String> {
    for arg in args {
        if arg == "--metrics" {
            return Some("artifacts/metrics".to_string());
        }
        if let Some(dir) = arg.strip_prefix("--metrics=") {
            return Some(dir.to_string());
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let artifacts_dir = args
        .iter()
        .position(|a| a == "--artifacts")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let serial = args.iter().any(|a| a == "--serial");
    let collected = args.iter().any(|a| a == "--collected");
    let metrics = metrics_dir(&args);
    let top_n = top_origins(&args);
    let timer_list = timer_list_instants(&args);
    if metrics.is_some() {
        // Chrome-trace profiling rides with the run report: capture every
        // wall-plane span from here on.
        telemetry::chrome::set_capture(true);
        telemetry::chrome::register_thread_name("main");
    }
    let scale = match args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
    {
        Some(n) => match n.parse::<u64>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--scale {n}: expected an integer >= 1");
                std::process::exit(2);
            }
        },
        None => 1,
    };
    let resident_cap = match args
        .iter()
        .position(|a| a == "--assert-peak-resident-below")
        .and_then(|i| args.get(i + 1))
    {
        Some(n) => match n.parse::<u64>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("--assert-peak-resident-below {n}: expected an integer >= 1");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let faults = match args
        .iter()
        .position(|a| a == "--faults")
        .and_then(|i| args.get(i + 1))
    {
        Some(spec) => match FaultSpec::parse(spec) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("--faults {spec}: {e}");
                std::process::exit(2);
            }
        },
        None => FaultSpec::none(),
    };
    if collected && !faults.is_none() {
        eprintln!("--collected and --faults are mutually exclusive");
        std::process::exit(2);
    }
    let backend = match (shard_count(&args), backend_mode(&args)) {
        (None, mode) => mode,
        (Some(n), BackendMode::Default) => BackendMode::One(Backend::Native.with_shards(n)),
        (Some(n), BackendMode::One(b)) => BackendMode::One(b.with_shards(n)),
        (Some(_), BackendMode::All) => {
            eprintln!("--shards cannot be combined with --wheel-backend=all (the matrix already varies shard counts)");
            std::process::exit(2);
        }
    };
    if backend != BackendMode::Default && (collected || serial || !faults.is_none()) {
        eprintln!("--wheel-backend runs on the cached parallel path; it cannot be combined with --serial, --collected, or --faults");
        std::process::exit(2);
    }
    let policy = adaptive_policy(&args);
    if policy.is_active() && (serial || collected) {
        eprintln!("--adaptive runs on the cached parallel path; it cannot be combined with --serial or --collected");
        std::process::exit(2);
    }
    let des = des_threads(&args);
    if des.is_some() && (serial || collected) {
        eprintln!("--des-threads runs on the cached parallel path; it cannot be combined with --serial or --collected");
        std::process::exit(2);
    }
    if des.is_some() && backend == BackendMode::All {
        eprintln!(
            "--des-threads cannot be combined with --wheel-backend=all (force one backend instead)"
        );
        std::process::exit(2);
    }
    // The one backend a --des-threads run forces (native unless
    // --wheel-backend/--shards chose another); unused otherwise.
    let des_backend = match backend {
        BackendMode::One(b) => b,
        _ => Backend::Native,
    };
    let duration = repro_duration() * scale;
    let threads = if serial || collected {
        1
    } else if let Some(n) = des {
        // The outer pool divides by the inner analysis fan-out.
        timerstudy::parallel::default_threads_for(&timerstudy::figures::paper_specs_configured(
            duration,
            SEED,
            faults,
            des_backend,
            n,
        ))
    } else {
        timerstudy::parallel::default_threads(9)
    };
    eprintln!(
        "running all experiments at {} simulated seconds per trace ({}, faults: {}, adaptive: {})...",
        duration.as_secs(),
        if collected {
            "collected oracle path".to_owned()
        } else if serial {
            "serial reference path".to_owned()
        } else if let Some(n) = des {
            format!("parallel, up to {threads} threads, {n} DES analysis partitions each")
        } else {
            format!("parallel, up to {threads} threads")
        },
        faults.label(),
        policy.label(),
    );
    let started = std::time::Instant::now();
    // Per-backend summary lines, printed with the run summary.
    let mut backend_summaries: Vec<String> = Vec::new();
    let (mode, (results, artifacts)) = if let Some(n) = des {
        let run = timerstudy::figures::reproduce_all_adaptive_with_results(
            duration,
            SEED,
            faults,
            des_backend,
            n,
            policy,
        );
        if backend != BackendMode::Default {
            backend_summaries.push(format!(
                "backend {}: {}",
                des_backend.label(),
                wheel_counter_summary(&run.0)
            ));
        }
        ("pdes", run)
    } else if !faults.is_none() {
        (
            "faulted",
            timerstudy::figures::reproduce_all_adaptive_with_results(
                duration,
                SEED,
                faults,
                Backend::Native,
                0,
                policy,
            ),
        )
    } else if collected {
        (
            "collected",
            timerstudy::figures::reproduce_all_collected_with_results(duration, SEED),
        )
    } else if serial {
        (
            "serial",
            timerstudy::figures::reproduce_all_serial_with_results(duration, SEED),
        )
    } else {
        match backend {
            BackendMode::Default => (
                if policy.is_learned() {
                    "adaptive"
                } else {
                    "parallel"
                },
                timerstudy::figures::reproduce_all_adaptive_with_results(
                    duration,
                    SEED,
                    FaultSpec::none(),
                    Backend::Native,
                    0,
                    policy,
                ),
            ),
            BackendMode::One(b) => {
                let run = timerstudy::figures::reproduce_all_adaptive_with_results(
                    duration,
                    SEED,
                    FaultSpec::none(),
                    b,
                    0,
                    policy,
                );
                backend_summaries.push(format!(
                    "backend {}: {}",
                    b.label(),
                    wheel_counter_summary(&run.0)
                ));
                ("backend", run)
            }
            BackendMode::All => {
                // The matrix: native first (its artifacts are the run's
                // stdout and the comparison baseline), then every forced
                // backend — flat and sharded — each asserted
                // byte-identical. Under `--adaptive` the per-backend
                // artifact lists include the counterfactual figures, so
                // the assertion covers those too.
                let mut all_results = Vec::new();
                let mut baseline: Option<Vec<timerstudy::figures::Artifact>> = None;
                for b in std::iter::once(Backend::Native)
                    .chain(Backend::FORCED)
                    .chain(Backend::SHARDED_MATRIX)
                {
                    let (results, artifacts) =
                        timerstudy::figures::reproduce_all_adaptive_with_results(
                            duration,
                            SEED,
                            FaultSpec::none(),
                            b,
                            0,
                            policy,
                        );
                    backend_summaries.push(format!(
                        "backend {}: {}",
                        b.label(),
                        wheel_counter_summary(&results)
                    ));
                    all_results.extend(results);
                    match &baseline {
                        None => baseline = Some(artifacts),
                        Some(native) => {
                            let identical = native.len() == artifacts.len()
                                && native.iter().zip(&artifacts).all(|(n, a)| {
                                    n.title == a.title && n.text == a.text && n.csv == a.csv
                                });
                            if !identical {
                                eprintln!(
                                    "FAIL: backend {} artifacts differ from the native run's",
                                    b.label()
                                );
                                std::process::exit(1);
                            }
                        }
                    }
                }
                eprintln!(
                    "backend matrix: artifacts byte-identical across native, {} forced, and {} sharded backends",
                    Backend::FORCED.len(),
                    Backend::SHARDED_MATRIX.len()
                );
                (
                    "backend_matrix",
                    (all_results, baseline.expect("native ran")),
                )
            }
        }
    };
    let wall = started.elapsed();
    eprintln!(
        "all experiments finished in {:.2} s wall-clock",
        wall.as_secs_f64()
    );
    for (index, artifact) in artifacts.iter().enumerate() {
        println!("{}", artifact.printable());
        if let Some(dir) = &artifacts_dir {
            std::fs::create_dir_all(dir).expect("create artifacts dir");
            let stem = artifact
                .title
                .split(':')
                .next()
                .unwrap_or("artifact")
                .to_lowercase()
                .replace(' ', "_");
            let base = format!("{dir}/{index:02}_{stem}");
            std::fs::write(format!("{base}.txt"), artifact.printable())
                .expect("write artifact text");
            if let Some(csv) = &artifact.csv {
                std::fs::write(format!("{base}.csv"), csv).expect("write artifact csv");
            }
        }
    }
    if let Some(dir) = &artifacts_dir {
        eprintln!("artifacts written to {dir}/");
    }
    if let Some(n) = top_n {
        print_top_origins(&results, n);
    }
    if let Some(instants) = &timer_list {
        // Dedicated uncached serial runs (like the --collected oracle):
        // the kernels dump their queues at each requested instant.
        for os in [timerstudy::Os::Linux, timerstudy::Os::Vista] {
            let spec = timerstudy::ExperimentSpec::new(
                os,
                timerstudy::Workload::Webserver,
                duration,
                SEED,
            )
            .with_backend(des_backend);
            eprintln!(
                "timer-list: dedicated {} Webserver run on backend {}...",
                os.label(),
                des_backend.label()
            );
            let (_, captures) = timerstudy::run_experiment_with_timer_list(spec, instants);
            for capture in &captures {
                println!("{}", capture.render());
            }
        }
    }
    // The final run summary is always printed, metrics requested or not.
    let cache = timerstudy::cache::global();
    bench::print_stage_summary(&format!("repro_all.{mode}"), &results, started);
    for line in &backend_summaries {
        eprintln!("{line}");
    }
    eprintln!(
        "run summary: cache {} hits / {} misses, {} thread(s), {:.2} s wall-clock",
        cache.hits(),
        cache.misses(),
        threads,
        wall.as_secs_f64()
    );
    if let Some(dir) = metrics {
        let report =
            timerstudy::run_report(&results, mode, duration.as_secs(), SEED, threads, wall);
        std::fs::create_dir_all(&dir).expect("create metrics dir");
        std::fs::write(format!("{dir}/run_report.json"), report.to_json())
            .expect("write run_report.json");
        std::fs::write(format!("{dir}/run_report.prom"), report.to_prometheus())
            .expect("write run_report.prom");
        std::fs::write(
            format!("{dir}/run_trace.chrome.json"),
            telemetry::chrome::export_json(),
        )
        .expect("write run_trace.chrome.json");
        eprintln!(
            "telemetry run report written to {dir}/run_report.{{json,prom}} \
             and {dir}/run_trace.chrome.json"
        );
    }
    // The analysis pipeline's memory bound, from each experiment's sim
    // snapshot: on the streaming paths this is capped by the chunk size
    // no matter how long the trace is; on --collected it is the full
    // trace length.
    let peak_resident = results
        .iter()
        .map(|r| {
            r.metrics
                .gauge(telemetry::SimGauge::AnalysisResidentEventsHigh)
        })
        .max()
        .unwrap_or(0);
    eprintln!("peak resident analysis events: {peak_resident}");
    if let Some(cap) = resident_cap {
        if peak_resident >= cap {
            eprintln!("FAIL: peak resident analysis events {peak_resident} >= cap {cap}");
            std::process::exit(1);
        }
        eprintln!("peak resident analysis events within cap {cap}");
    }
}
