//! Reproduces every table and figure of the paper in one run.
//!
//! Full 30-minute traces by default; set `REPRO_SECONDS` to scale down.
//! The nine distinct experiments run in parallel through the experiment
//! cache (thread count: `REPRO_THREADS`, default = available cores);
//! `--serial` forces the uncached single-threaded reference path, which
//! produces bit-identical output. With `--artifacts DIR`, each artifact
//! is also written to `DIR` as a text rendering plus CSV data where
//! applicable.

use timerstudy::experiment::repro_duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let artifacts_dir = args
        .iter()
        .position(|a| a == "--artifacts")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let serial = args.iter().any(|a| a == "--serial");
    let duration = repro_duration();
    eprintln!(
        "running all experiments at {} simulated seconds per trace ({})...",
        duration.as_secs(),
        if serial {
            "serial reference path".to_owned()
        } else {
            format!(
                "parallel, up to {} threads",
                timerstudy::parallel::default_threads(9)
            )
        }
    );
    let started = std::time::Instant::now();
    let artifacts = if serial {
        timerstudy::figures::reproduce_all_serial(duration, 7)
    } else {
        timerstudy::figures::reproduce_all(duration, 7)
    };
    eprintln!(
        "all experiments finished in {:.2} s wall-clock",
        started.elapsed().as_secs_f64()
    );
    for (index, artifact) in artifacts.iter().enumerate() {
        println!("{}", artifact.printable());
        if let Some(dir) = &artifacts_dir {
            std::fs::create_dir_all(dir).expect("create artifacts dir");
            let stem = artifact
                .title
                .split(':')
                .next()
                .unwrap_or("artifact")
                .to_lowercase()
                .replace(' ', "_");
            let base = format!("{dir}/{index:02}_{stem}");
            std::fs::write(format!("{base}.txt"), artifact.printable())
                .expect("write artifact text");
            if let Some(csv) = &artifact.csv {
                std::fs::write(format!("{base}.csv"), csv).expect("write artifact csv");
            }
        }
    }
    if let Some(dir) = &artifacts_dir {
        eprintln!("artifacts written to {dir}/");
    }
}
