//! Reproduces every table and figure of the paper in one run.
//!
//! Full 30-minute traces by default; set `REPRO_SECONDS` to scale down.
//! The nine distinct experiments run in parallel through the experiment
//! cache (thread count: `REPRO_THREADS`, default = available cores);
//! `--serial` forces the uncached single-threaded reference path, which
//! produces bit-identical output. With `--artifacts DIR`, each artifact
//! is also written to `DIR` as a text rendering plus CSV data where
//! applicable. `--faults SPEC` attaches a deterministic fault plane to
//! every experiment (`SPEC` is a comma list of `drops[=PERMILLE]`,
//! `net-burst`, `clock-jitter`, `all`, `seed=N`); the summary tables then
//! gain drop/degradation accounting rows.

use timerstudy::experiment::repro_duration;
use timerstudy::FaultSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let artifacts_dir = args
        .iter()
        .position(|a| a == "--artifacts")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let serial = args.iter().any(|a| a == "--serial");
    let faults = match args
        .iter()
        .position(|a| a == "--faults")
        .and_then(|i| args.get(i + 1))
    {
        Some(spec) => match FaultSpec::parse(spec) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("--faults {spec}: {e}");
                std::process::exit(2);
            }
        },
        None => FaultSpec::none(),
    };
    let duration = repro_duration();
    eprintln!(
        "running all experiments at {} simulated seconds per trace ({}, faults: {})...",
        duration.as_secs(),
        if serial {
            "serial reference path".to_owned()
        } else {
            format!(
                "parallel, up to {} threads",
                timerstudy::parallel::default_threads(9)
            )
        },
        faults.label(),
    );
    let started = std::time::Instant::now();
    let artifacts = if !faults.is_none() {
        timerstudy::figures::reproduce_all_faulted(duration, 7, faults)
    } else if serial {
        timerstudy::figures::reproduce_all_serial(duration, 7)
    } else {
        timerstudy::figures::reproduce_all(duration, 7)
    };
    eprintln!(
        "all experiments finished in {:.2} s wall-clock",
        started.elapsed().as_secs_f64()
    );
    for (index, artifact) in artifacts.iter().enumerate() {
        println!("{}", artifact.printable());
        if let Some(dir) = &artifacts_dir {
            std::fs::create_dir_all(dir).expect("create artifacts dir");
            let stem = artifact
                .title
                .split(':')
                .next()
                .unwrap_or("artifact")
                .to_lowercase()
                .replace(' ', "_");
            let base = format!("{dir}/{index:02}_{stem}");
            std::fs::write(format!("{base}.txt"), artifact.printable())
                .expect("write artifact text");
            if let Some(csv) = &artifact.csv {
                std::fs::write(format!("{base}.csv"), csv).expect("write artifact csv");
            }
        }
    }
    if let Some(dir) = &artifacts_dir {
        eprintln!("artifacts written to {dir}/");
    }
}
