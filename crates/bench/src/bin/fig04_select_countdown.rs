//! Figure 4: dot plot of X timer usage via select.
use timerstudy::experiment::repro_duration;
use timerstudy::{cache, figures, ExperimentSpec, Os, Workload};

fn main() {
    let started = std::time::Instant::now();
    let result = cache::global().get_or_run(ExperimentSpec::new(
        Os::Linux,
        Workload::Idle,
        repro_duration(),
        7,
    ));
    println!("{}", figures::fig04(&result).printable());
    let (detected, flagged) = result.report.countdown_validation;
    println!("countdown detector: {detected} sets detected vs {flagged} ground-truth flagged");
    bench::print_stage_summary("fig04", [result.as_ref()], started);
}
