//! Figure 3: common Linux timer values (unfiltered).
use timerstudy::experiment::{repro_duration, run_table_workloads};
use timerstudy::{figures, Os};

fn main() {
    let started = std::time::Instant::now();
    let results = run_table_workloads(Os::Linux, repro_duration(), 7);
    println!("{}", figures::fig03(&results).printable());
    bench::print_stage_summary("fig03", &results, started);
}
