//! Extension experiment: adaptive timeouts *inside* the traced system.
//!
//! The paper's §5.1 proposal, closed-loop: an Apache-like worker polls
//! client sockets. The legacy code uses the hardcoded 15 s of Table 3;
//! the adaptive variant asks the estimator for a 99.9 %-confidence
//! timeout learned from this connection population's observed request
//! gaps. Dead clients (hung connections) are injected; we measure how
//! long a worker slot stays hostage to each policy, driving the real
//! simulated kernel timer API throughout.

use adaptive::AdaptiveTimeout;
use linuxsim::{LinuxConfig, LinuxKernel};
use simtime::{LogNormal, Sample, SimDuration, SimInstant, SimRng};
use trace::NullSink;

/// One policy run: returns (mean hostage time, p99-ish max, sets, cancels).
fn run(adaptive: bool) -> (f64, f64, u64) {
    let mut kernel = LinuxKernel::new(
        LinuxConfig {
            seed: 7,
            ..LinuxConfig::default()
        },
        Box::new(NullSink),
    );
    kernel.register_process(140, "apache2");
    let mut rng = SimRng::new(99);
    // Request gaps on a healthy connection: median 120 ms, long tail.
    let gap_dist = LogNormal::from_median(0.120, 0.8);
    let mut estimator = AdaptiveTimeout::new(0.999, SimDuration::from_secs(15))
        .with_bounds(SimDuration::from_millis(50), SimDuration::from_secs(15));
    let mut now = SimInstant::BOOT;
    let mut hostage = Vec::new();
    for i in 0..20_000u64 {
        let timeout = if adaptive {
            estimator.timeout()
        } else {
            SimDuration::from_secs(15)
        };
        let handle = kernel.sys_poll(140, 140, "apache2:socket_poll", timeout);
        // 1 % of connections hang (client died mid-request).
        if rng.chance(0.01) {
            // The worker waits out the whole timeout.
            now = now + timeout + SimDuration::from_millis(1);
            kernel.advance_to(now);
            hostage.push(timeout.as_secs_f64());
            if adaptive {
                estimator.observe_timeout();
            }
        } else {
            let gap = gap_dist.sample_duration(&mut rng).min(timeout);
            now += gap.max(SimDuration::from_micros(100));
            kernel.advance_to(now);
            if kernel.timer_base().is_pending(handle) {
                kernel.sys_poll_return(handle);
                if adaptive {
                    estimator.observe_success(gap);
                }
            } else if adaptive {
                // The learned timeout fired although the client was alive:
                // spurious, counted by the estimator.
                estimator.observe_timeout();
            }
        }
        if i % 1000 == 0 {
            now += SimDuration::from_millis(5);
        }
    }
    let mean = hostage.iter().sum::<f64>() / hostage.len().max(1) as f64;
    let max = hostage.iter().copied().fold(0.0f64, f64::max);
    (mean, max, kernel.log().counts().set)
}

fn main() {
    println!("=== Adaptive socket-poll timeout inside the simulated kernel ===\n");
    println!("20000 requests, 1% hung clients; worker-slot hostage time per hang:\n");
    let (fixed_mean, fixed_max, fixed_sets) = run(false);
    let (ad_mean, ad_max, ad_sets) = run(true);
    println!("policy            mean      worst   kernel timer sets");
    println!("fixed 15 s     {fixed_mean:>7.2}s   {fixed_max:>7.2}s   {fixed_sets:>8}");
    println!("adaptive 99.9% {ad_mean:>7.2}s   {ad_max:>7.2}s   {ad_sets:>8}");
    println!(
        "\nworker slots are freed {:.0}x faster with learned timeouts,",
        fixed_mean / ad_mean.max(1e-9)
    );
    println!("with the same kernel timer API and no extra timer churn.");
}
