//! Figure 7: common Vista timeout values.
use timerstudy::experiment::{repro_duration, run_table_workloads};
use timerstudy::{figures, Os};

fn main() {
    let results = run_table_workloads(Os::Vista, repro_duration(), 7);
    println!("{}", figures::fig07(&results).printable());
}
