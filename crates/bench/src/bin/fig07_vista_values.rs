//! Figure 7: common Vista timeout values.
use timerstudy::experiment::{repro_duration, run_table_workloads};
use timerstudy::{figures, Os};

fn main() {
    let started = std::time::Instant::now();
    let results = run_table_workloads(Os::Vista, repro_duration(), 7);
    println!("{}", figures::fig07(&results).printable());
    bench::print_stage_summary("fig07", &results, started);
}
