//! Figure 1: timer usage frequency in Vista (Outlook/Browser/System/Kernel).
use timerstudy::{figures, run_experiment, ExperimentSpec, Os, Workload, FIG1_DURATION};

fn main() {
    let result = run_experiment(ExperimentSpec {
        os: Os::Vista,
        workload: Workload::Outlook,
        duration: FIG1_DURATION,
        seed: 7,
    });
    println!("{}", figures::fig01(&result).printable());
}
