//! Figure 1: timer usage frequency in Vista (Outlook/Browser/System/Kernel).
use timerstudy::{cache, figures, ExperimentSpec, Os, Workload, FIG1_DURATION};

fn main() {
    let started = std::time::Instant::now();
    let result = cache::global().get_or_run(ExperimentSpec::new(
        Os::Vista,
        Workload::Outlook,
        FIG1_DURATION,
        7,
    ));
    println!("{}", figures::fig01(&result).printable());
    bench::print_stage_summary("fig01", [result.as_ref()], started);
}
