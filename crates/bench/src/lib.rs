//! Benchmark and reproduction binaries for the paper.
