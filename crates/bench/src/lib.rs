//! Benchmark and reproduction binaries for the paper.

use std::time::Instant;

use timerstudy::ExperimentResult;

pub mod pdes_scenario;

/// Prints the one-line `[telemetry] stage=...` summary every reproduction
/// binary emits when it finishes. Goes to stderr: stdout is reserved for
/// the artifact text, which the golden-output tests compare byte-for-byte.
pub fn print_stage_summary<'a>(
    stage: &str,
    results: impl IntoIterator<Item = &'a ExperimentResult>,
    started: Instant,
) {
    let mut experiments = 0u64;
    let mut sim_events = 0u64;
    for result in results {
        experiments += 1;
        sim_events += result.metrics.total_events();
    }
    let cache = timerstudy::cache::global();
    eprintln!(
        "{}",
        telemetry::stage_summary_line(
            stage,
            &[
                ("experiments", experiments.to_string()),
                ("sim_events", sim_events.to_string()),
                ("cache_hits", cache.hits().to_string()),
                ("cache_misses", cache.misses().to_string()),
                ("wall_ms", started.elapsed().as_millis().to_string()),
            ],
        )
    );
}
