//! The shared synthetic workload behind the `des_pdes` benchmarks: a
//! heavy timer calendar split across `N` conservative-DES partitions.
//!
//! The *total* work is fixed — the same timer population and the same
//! per-expiry handler cost regardless of the partition count — so the
//! `des_pdes/1` vs `des_pdes/8` numbers are directly comparable and
//! their ratio is the engine's scaling on this machine. Partitions are
//! arranged in a ring (every third timer migrates clockwise with a
//! 20 ms lookahead), so widths above 1 also pay the real synchronisation
//! cost: null messages, horizon stalls, cross-edge envelopes.

use des::pdes::{Executor, PartitionId, Process, SendEffects};
use des::Calendar;
use simtime::{SimDuration, SimInstant, SimRng};

/// Total timers across all partitions, whatever the width.
pub const TOTAL_TIMERS: u64 = 32_768;

/// Mixing rounds per expiry — the stand-in for timer-handler work.
/// Heavy enough that the calendar pop is not the whole story, the way a
/// real expiry (TCP retransmit bookkeeping, watchdog re-arm) is not
/// free either — and heavy enough that the engine's per-window
/// synchronisation cost is amortised rather than dominant.
const WORK_ROUNDS: u64 = 512;

/// The span the timers are seeded over.
const SPAN_MS: u64 = 2_000;

/// One partition of the synthetic calendar.
pub struct HeavyBase {
    cal: Calendar<u64>,
    /// Clockwise ring neighbour, when there is more than one partition.
    ring_to: Option<PartitionId>,
    latency: SimDuration,
    /// Deterministic digest of everything this partition executed; the
    /// benchmarks fold it into their sink so work is not optimised away.
    pub checksum: u64,
    pub events: u64,
}

fn mix(mut x: u64) -> u64 {
    for i in 0..WORK_ROUNDS {
        x = x
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(31)
            .wrapping_add(i);
    }
    x
}

impl HeavyBase {
    fn execute(&mut self, at: SimInstant, id: u64, fx: &mut SendEffects<u64>) {
        self.checksum ^= mix(at.as_nanos() ^ id);
        self.events += 1;
        // Every third timer hops clockwise once; the tag bit marks an
        // already-migrated timer so it never hops again.
        const MIGRATED: u64 = 1 << 63;
        if id & MIGRATED == 0 && id.is_multiple_of(3) {
            if let Some(to) = self.ring_to {
                fx.send(to, at.saturating_add(self.latency), id | MIGRATED);
            }
        }
    }
}

impl Process for HeavyBase {
    type Msg = u64;

    fn next_local(&mut self) -> Option<SimInstant> {
        self.cal.peek_time()
    }

    fn execute_local(&mut self, fx: &mut SendEffects<u64>) {
        let (at, id) = self.cal.pop().expect("scheduled timer");
        self.execute(at, id, fx);
    }

    fn receive(&mut self, at: SimInstant, _from: PartitionId, id: u64, fx: &mut SendEffects<u64>) {
        self.execute(at, id, fx);
    }
}

/// Builds the fixed-total-work scenario on `partitions` partitions.
pub fn build(partitions: u32) -> Executor<HeavyBase> {
    // Coarse lookahead relative to the seeded span: ~100 safe windows
    // over the run, each wide enough to hold a real batch of expiries.
    let latency = SimDuration::from_millis(20);
    let mut rng = SimRng::new(0xdead_beef);
    let per = TOTAL_TIMERS / u64::from(partitions);
    let mut bases = Vec::new();
    for p in 0..partitions {
        let mut cal = Calendar::new();
        for i in 0..per {
            let at = SimInstant::BOOT + SimDuration::from_micros(rng.range_u64(1, SPAN_MS * 1000));
            cal.post(at, (u64::from(p) << 32) | i);
        }
        bases.push(HeavyBase {
            cal,
            ring_to: (partitions > 1).then(|| PartitionId((p + 1) % partitions)),
            latency,
            checksum: 0,
            events: 0,
        });
    }
    let mut exec = Executor::new(bases);
    if partitions > 1 {
        for p in 0..partitions {
            exec = exec.edge(PartitionId(p), PartitionId((p + 1) % partitions), latency);
        }
    }
    exec
}

/// Runs the scenario to completion on scoped threads and returns the
/// folded checksum (the benchmark sink) plus total events executed.
pub fn run(partitions: u32) -> (u64, u64) {
    let (bases, _report) = build(partitions).run(SimInstant::BOOT + SimDuration::from_secs(10));
    fold(&bases)
}

/// [`run`] through the serial oracle, for differential checks.
pub fn run_serial(partitions: u32) -> (u64, u64) {
    let (bases, _report) =
        build(partitions).run_serial(SimInstant::BOOT + SimDuration::from_secs(10));
    fold(&bases)
}

fn fold(bases: &[HeavyBase]) -> (u64, u64) {
    let checksum = bases.iter().fold(0u64, |acc, b| acc ^ b.checksum);
    let events = bases.iter().map(|b| b.events).sum();
    (checksum, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_width_executes_the_same_population() {
        let (sum1, n1) = run(1);
        assert_eq!(n1, TOTAL_TIMERS, "width 1 has no migrations");
        for width in [2u32, 4, 8] {
            let (par_sum, par_n) = run(width);
            let (ser_sum, ser_n) = run_serial(width);
            assert_eq!(par_sum, ser_sum, "width {width} diverged from oracle");
            assert_eq!(par_n, ser_n);
            // Migrated timers execute twice (once on each side of the
            // hop), so wider runs do strictly more, never fewer, events.
            assert!(par_n >= TOTAL_TIMERS / 8 * 8, "width {width} lost timers");
            let _ = (sum1, n1);
        }
    }
}
