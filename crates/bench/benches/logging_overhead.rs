//! The paper's §3.2 instrumentation micro-benchmark.
//!
//! "A micro-benchmark of the code executed to gather required timeout
//! parameters and log these to the memory buffer shows an overhead of
//! 236 cycles" — measured here as nanoseconds per record for the binary
//! ring-buffer path and the null-sink floor.

use criterion::{criterion_group, criterion_main, Criterion};
use simtime::{SimDuration, SimInstant};
use trace::{Event, EventKind, NullSink, RingBuffer, RingSink, Space, TraceLog};

fn sample_event(i: u64) -> Event {
    Event::new(
        SimInstant::from_nanos(i * 1_000),
        EventKind::Set,
        0xC100_0000 + (i % 64) * 0x40,
        (i % 32) as u32,
    )
    .with_timeout(SimDuration::from_millis(i % 500))
    .with_expires(SimInstant::from_nanos(i * 1_000 + 4_000_000))
    .with_task(100, 100, Space::User)
}

fn bench_logging(c: &mut Criterion) {
    c.bench_function("log_record_ring_buffer", |b| {
        let mut log = TraceLog::new(Box::new(RingSink::new(RingBuffer::new(64 * 1024 * 1024))));
        let mut i = 0u64;
        b.iter(|| {
            log.log(sample_event(i));
            i += 1;
        })
    });
    c.bench_function("log_record_null_sink", |b| {
        let mut log = TraceLog::new(Box::new(NullSink));
        let mut i = 0u64;
        b.iter(|| {
            log.log(sample_event(i));
            i += 1;
        })
    });
}

criterion_group!(benches, bench_logging);
criterion_main!(benches);
