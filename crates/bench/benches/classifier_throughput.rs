//! Analysis-pipeline throughput: events/second through the full streaming
//! analyzer (the Firefox trace is ~3.9 M events; post-processing must not
//! dominate the experiment).

use analysis::{AnalyzerConfig, TraceAnalyzer};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simtime::{SimDuration, SimInstant, SimRng};
use trace::{Event, EventKind, Space};

fn synthetic_events(n: usize) -> Vec<Event> {
    let mut rng = SimRng::new(1);
    let mut events = Vec::with_capacity(n);
    let mut now = 0u64;
    for i in 0..n {
        now += rng.range_u64(100_000, 5_000_000);
        let addr = 0xC100_0000 + (i as u64 % 96) * 0x40;
        let timeout = [4u64, 8, 12, 40, 204, 500, 1_000, 5_000][i % 8];
        events.push(
            Event::new(
                SimInstant::from_nanos(now),
                EventKind::Set,
                addr,
                (i % 24) as u32,
            )
            .with_timeout(SimDuration::from_millis(timeout))
            .with_expires(SimInstant::from_nanos(now + timeout * 1_000_000))
            .with_task(100, 100, Space::User),
        );
        let end_kind = if i % 3 == 0 {
            EventKind::Expire
        } else {
            EventKind::Cancel
        };
        events.push(Event::new(
            SimInstant::from_nanos(now + timeout * 500_000),
            end_kind,
            addr,
            (i % 24) as u32,
        ));
    }
    events
}

fn bench_analyzer(c: &mut Criterion) {
    let events = synthetic_events(50_000);
    let mut group = c.benchmark_group("analyzer");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("stream_100k_events", |b| {
        b.iter(|| {
            let mut a = TraceAnalyzer::new(AnalyzerConfig::linux());
            for e in &events {
                a.push(e);
            }
            a.counts().accesses
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analyzer);
criterion_main!(benches);
