//! Timer-queue data-structure benchmarks (Varghese & Lauck comparison).
//!
//! Compares the Linux cascading hierarchical wheel, the hashed wheel,
//! the binary heap and the sorted-list baseline on the operation mix the
//! paper's traces exhibit: schedule-heavy with many cancellations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simtime::SimRng;
use wheel::{HashedWheel, HeapQueue, HierarchicalWheel, SortedList, TimerQueue};

fn mixed_ops(queue: &mut dyn TimerQueue, n: u64, rng: &mut SimRng) -> u64 {
    let mut fired = 0u64;
    let mut now = 0u64;
    for i in 0..n {
        let delta = 1 + rng.range_u64(0, 5_000);
        queue.schedule(i % 512, now + delta);
        if rng.chance(0.6) {
            // The paper's Linux traces cancel more than they expire.
            queue.cancel(rng.range_u64(0, 512));
        }
        if i % 16 == 0 {
            now += 40;
            queue.advance_to(now, &mut |_, _| fired += 1);
        }
    }
    fired
}

fn bench_wheels(c: &mut Criterion) {
    let mut group = c.benchmark_group("timer_queue_mixed_ops");
    for n in [10_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("hierarchical", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = HierarchicalWheel::new();
                mixed_ops(&mut q, n, &mut SimRng::new(1))
            })
        });
        group.bench_with_input(BenchmarkId::new("hashed", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = HashedWheel::new(256);
                mixed_ops(&mut q, n, &mut SimRng::new(1))
            })
        });
        group.bench_with_input(BenchmarkId::new("heap", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = HeapQueue::new();
                mixed_ops(&mut q, n, &mut SimRng::new(1))
            })
        });
        // The O(n)-insert baseline only at the small size.
        if n <= 10_000 {
            group.bench_with_input(BenchmarkId::new("sorted_list", n), &n, |b, &n| {
                b.iter(|| {
                    let mut q = SortedList::new();
                    mixed_ops(&mut q, n, &mut SimRng::new(1))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_wheels);
criterion_main!(benches);
