//! Streaming vs. collected analysis: the two pipeline shapes whose
//! reports are proven byte-identical by the differential oracle tests.
//! The streaming path buffers at most one chunk of events; the collected
//! path materialises the whole trace first (the pre-streaming shape).
//! A third case drives the chunked k-way merge reader straight off
//! per-CPU rings, covering the decode side of the streaming pipeline.

use analysis::{drive_chunks, AnalyzerConfig, EventVisitor, TraceAnalyzer};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use simtime::{SimDuration, SimInstant, SimRng};
use trace::{Event, EventKind, PerCpuRings, Space};

const CHUNK: usize = 4096;

fn synthetic_events(n: usize) -> Vec<Event> {
    let mut rng = SimRng::new(1);
    let mut events = Vec::with_capacity(2 * n);
    let mut now = 0u64;
    for i in 0..n {
        now += rng.range_u64(100_000, 5_000_000);
        let addr = 0xC100_0000 + (i as u64 % 96) * 0x40;
        let timeout = [4u64, 8, 12, 40, 204, 500, 1_000, 5_000][i % 8];
        events.push(
            Event::new(
                SimInstant::from_nanos(now),
                EventKind::Set,
                addr,
                (i % 24) as u32,
            )
            .with_timeout(SimDuration::from_millis(timeout))
            .with_expires(SimInstant::from_nanos(now + timeout * 1_000_000))
            .with_task(100, 100, Space::User),
        );
        let end_kind = if i % 3 == 0 {
            EventKind::Expire
        } else {
            EventKind::Cancel
        };
        events.push(Event::new(
            SimInstant::from_nanos(now + timeout * 500_000),
            end_kind,
            addr,
            (i % 24) as u32,
        ));
    }
    events
}

fn bench_streaming(c: &mut Criterion) {
    let events = synthetic_events(50_000);
    // Rings sized to hold everything: the bench measures merge+analysis
    // cost, not drop handling.
    let rings = PerCpuRings::new(4, 4 << 20);
    for (i, e) in events.iter().enumerate() {
        rings.log_on(i % 4, e);
    }
    let mut group = c.benchmark_group("analysis_streaming");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("streaming_chunked_4096", |b| {
        b.iter(|| {
            let mut a = TraceAnalyzer::new(AnalyzerConfig::linux());
            let peak = drive_chunks(events.iter().copied(), CHUNK, &mut a);
            black_box((a.counts().accesses, peak))
        })
    });
    group.bench_function("collected_oracle", |b| {
        b.iter(|| {
            // The pre-streaming shape: clone the full trace into a
            // resident Vec, then one whole-trace pass.
            let resident: Vec<Event> = events.clone();
            let mut a = TraceAnalyzer::new(AnalyzerConfig::linux());
            a.visit_chunk(&resident);
            black_box(a.counts().accesses)
        })
    });
    group.bench_function("ring_merge_chunked_4096", |b| {
        b.iter(|| {
            let mut a = TraceAnalyzer::new(AnalyzerConfig::linux());
            let mut reader = rings.stream();
            let mut buf = Vec::with_capacity(CHUNK);
            while reader.read_chunk(&mut buf, CHUNK) > 0 {
                a.visit_chunk(&buf);
            }
            black_box(a.counts().accesses)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
