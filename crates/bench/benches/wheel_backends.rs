//! Per-backend cost profile of the pluggable timer-queue factory.
//!
//! Where `wheel_ops` compares the concrete structures on one mixed
//! workload, this bench isolates the four operations the simulated
//! kernels drive through `Backend::build` — schedule, cancel, cascade
//! pressure, and a drain-heavy advance — so a backend choice for
//! `repro_all --wheel-backend` can be justified per axis rather than in
//! aggregate. Every backend goes through the same `Box<dyn TimerQueue>`
//! the kernels use, so virtual-dispatch cost is part of the measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simtime::SimRng;
use wheel::{Backend, TimerQueue};

fn fresh(backend: Backend) -> Box<dyn TimerQueue> {
    backend.build(Backend::Hierarchical, 256)
}

/// The sorted list's O(n) insert makes large sizes pointless; cap it so
/// the bench finishes while still ranking it against the others.
fn sizes_for(backend: Backend) -> &'static [u64] {
    match backend {
        Backend::SortedList => &[4_096],
        _ => &[4_096, 65_536],
    }
}

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("wheel_backend_schedule");
    for backend in Backend::FORCED {
        for &n in sizes_for(backend) {
            group.bench_with_input(BenchmarkId::new(backend.label(), n), &n, |b, &n| {
                b.iter(|| {
                    let mut q = fresh(backend);
                    let mut rng = SimRng::new(1);
                    for i in 0..n {
                        q.schedule(i, 1 + rng.range_u64(0, 100_000));
                    }
                    q.len()
                })
            });
        }
    }
    group.finish();
}

fn bench_cancel(c: &mut Criterion) {
    let mut group = c.benchmark_group("wheel_backend_cancel");
    for backend in Backend::FORCED {
        for &n in sizes_for(backend) {
            group.bench_with_input(BenchmarkId::new(backend.label(), n), &n, |b, &n| {
                b.iter(|| {
                    let mut q = fresh(backend);
                    let mut rng = SimRng::new(1);
                    for i in 0..n {
                        q.schedule(i, 1 + rng.range_u64(0, 100_000));
                    }
                    // Cancel in a shuffled-ish order, as kernels do.
                    let mut cancelled = 0u64;
                    for i in 0..n {
                        if q.cancel((i * 7 + 3) % n) {
                            cancelled += 1;
                        }
                    }
                    cancelled
                })
            });
        }
    }
    group.finish();
}

/// Timers spread across five wheel revolutions, then advanced through
/// the whole horizon: maximal cascade pressure for the hierarchical
/// wheel and maximal revisit pressure for the hashed wheel.
fn bench_cascade(c: &mut Criterion) {
    let mut group = c.benchmark_group("wheel_backend_cascade");
    for backend in Backend::FORCED {
        for &n in sizes_for(backend) {
            group.bench_with_input(BenchmarkId::new(backend.label(), n), &n, |b, &n| {
                b.iter(|| {
                    let mut q = fresh(backend);
                    let mut rng = SimRng::new(1);
                    let horizon = 5 * 256 * 64;
                    for i in 0..n {
                        q.schedule(i, 1 + rng.range_u64(0, horizon));
                    }
                    let mut fired = 0u64;
                    q.advance_to(horizon + 1, &mut |_, _| fired += 1);
                    fired
                })
            });
        }
    }
    group.finish();
}

/// The paper's trace mix (schedule-heavy, cancel-more-than-expire) with
/// frequent short advances — the closest proxy for simulator load.
fn bench_advance_mix(c: &mut Criterion) {
    let mut group = c.benchmark_group("wheel_backend_advance_mix");
    for backend in Backend::FORCED {
        for &n in sizes_for(backend) {
            group.bench_with_input(BenchmarkId::new(backend.label(), n), &n, |b, &n| {
                b.iter(|| {
                    let mut q = fresh(backend);
                    let mut rng = SimRng::new(1);
                    let mut now = 0u64;
                    let mut fired = 0u64;
                    for i in 0..n {
                        q.schedule(i % 512, now + 1 + rng.range_u64(0, 5_000));
                        if rng.chance(0.6) {
                            q.cancel(rng.range_u64(0, 512));
                        }
                        if i % 16 == 0 {
                            now += 40;
                            q.advance_to(now, &mut |_, _| fired += 1);
                        }
                    }
                    fired
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedule,
    bench_cancel,
    bench_cascade,
    bench_advance_mix
);
criterion_main!(benches);
