//! Adaptive-timeout machinery micro-benchmarks: can the §5.1 estimator
//! run at per-packet rates? (The kernel objection to learned timeouts.)

use adaptive::{AdaptiveTimeout, P2Quantile, RttEstimator};
use criterion::{criterion_group, criterion_main, Criterion};
use simtime::{SimDuration, SimRng};

fn bench_adaptive(c: &mut Criterion) {
    c.bench_function("p2_quantile_observe", |b| {
        let mut q = P2Quantile::new(0.99);
        let mut rng = SimRng::new(1);
        b.iter(|| q.observe(rng.unit_f64()))
    });
    c.bench_function("adaptive_timeout_observe_success", |b| {
        let mut est = AdaptiveTimeout::new(0.99, SimDuration::from_secs(30));
        let mut rng = SimRng::new(1);
        b.iter(|| {
            est.observe_success(SimDuration::from_nanos(
                1_000_000 + rng.range_u64(0, 1_000_000),
            ));
            est.timeout()
        })
    });
    c.bench_function("rtt_estimator_on_ack", |b| {
        let mut est = RttEstimator::new();
        let mut rng = SimRng::new(1);
        b.iter(|| {
            est.on_ack(SimDuration::from_micros(500 + rng.range_u64(0, 400)));
            est.rto()
        })
    });
}

criterion_group!(benches, bench_adaptive);
criterion_main!(benches);
