//! Overhead of the telemetry layer on the hot paths it instruments.
//!
//! Each benchmark runs the same operation mix twice: with metric
//! recording enabled (the default) and disabled via
//! `telemetry::set_enabled(false)`, which reduces every sim-plane
//! recording call to a single relaxed atomic load — the uninstrumented
//! baseline. The companion smoke test
//! (`crates/core/tests/telemetry_overhead_smoke.rs`) asserts the
//! end-to-end difference stays within budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simtime::{SimDuration, SimInstant, SimRng};
use trace::{Event, EventKind, RingBuffer, RingSink, Space, TraceLog};
use wheel::{HierarchicalWheel, TimerQueue};

fn wheel_mixed_ops(n: u64, rng: &mut SimRng) -> u64 {
    let mut q = HierarchicalWheel::new();
    let mut fired = 0u64;
    let mut now = 0u64;
    for i in 0..n {
        let delta = 1 + rng.range_u64(0, 5_000);
        q.schedule(i % 512, now + delta);
        if rng.chance(0.6) {
            q.cancel(rng.range_u64(0, 512));
        }
        if i % 16 == 0 {
            now += 40;
            q.advance_to(now, &mut |_, _| fired += 1);
        }
    }
    fired
}

/// Folds a synthetic set/expire/cancel stream through the attribution
/// tracker — the per-event cost the tentpole adds to every analysis.
fn attr_fold(n: u64) -> usize {
    let mut tracker = analysis::AttributionTracker::new();
    for i in 0..n {
        let ts = SimInstant::from_nanos(i * 1_000);
        let origin = (i % 24) as u32;
        let addr = 0xC100_0000 + (i % 64) * 0x40;
        let event = match i % 3 {
            0 => Event::new(ts, EventKind::Set, addr, origin)
                .with_timeout(SimDuration::from_millis(i % 500))
                .with_expires(ts + SimDuration::from_millis(i % 500)),
            1 => Event::new(ts, EventKind::Expire, addr, origin)
                .with_expires(ts - SimDuration::from_micros(i % 900)),
            _ => Event::new(ts, EventKind::Cancel, addr, origin),
        };
        tracker.push(&event);
    }
    tracker.origin_count()
}

fn log_records(n: u64) -> u64 {
    let mut log = TraceLog::new(Box::new(RingSink::new(RingBuffer::new(64 * 1024 * 1024))));
    for i in 0..n {
        log.log(
            Event::new(
                SimInstant::from_nanos(i * 1_000),
                EventKind::Set,
                0xC100_0000 + (i % 64) * 0x40,
                (i % 32) as u32,
            )
            .with_timeout(SimDuration::from_millis(i % 500))
            .with_task(100, 100, Space::User),
        );
    }
    n
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    for (label, on) in [("instrumented", true), ("baseline_disabled", false)] {
        group.bench_with_input(BenchmarkId::new("wheel_mixed_ops", label), &on, |b, &on| {
            telemetry::set_enabled(on);
            b.iter(|| wheel_mixed_ops(50_000, &mut SimRng::new(1)));
            telemetry::set_enabled(true);
        });
        group.bench_with_input(BenchmarkId::new("trace_log", label), &on, |b, &on| {
            telemetry::set_enabled(on);
            b.iter(|| log_records(50_000));
            telemetry::set_enabled(true);
        });
        group.bench_with_input(BenchmarkId::new("attr_fold", label), &on, |b, &on| {
            telemetry::set_enabled(on);
            b.iter(|| attr_fold(50_000));
            telemetry::set_enabled(true);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
