//! Scaling profile of the conservative parallel DES engine.
//!
//! One fixed heavy calendar ([`bench::pdes_scenario::TOTAL_TIMERS`]
//! timers with a real per-expiry handler cost) is split over 1, 2, 4
//! and 8 ring-connected partitions and run to completion — total work
//! constant, so the per-width times read directly as the engine's
//! speedup curve, synchronisation cost (null messages, horizon stalls)
//! included. The serial oracle is measured alongside the width-1 run so
//! the threaded engine's fixed overhead over plain event dispatch is
//! visible too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const WIDTHS: [u32; 4] = [1, 2, 4, 8];

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_pdes");
    for width in WIDTHS {
        group.bench_with_input(
            BenchmarkId::new("partitions", width),
            &width,
            |b, &width| {
                b.iter(|| {
                    let (checksum, events) = bench::pdes_scenario::run(width);
                    checksum ^ events
                })
            },
        );
    }
    group.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_pdes_serial_oracle");
    for width in WIDTHS {
        group.bench_with_input(
            BenchmarkId::new("partitions", width),
            &width,
            |b, &width| {
                b.iter(|| {
                    let (checksum, events) = bench::pdes_scenario::run_serial(width);
                    checksum ^ events
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel, bench_oracle);
criterion_main!(benches);
