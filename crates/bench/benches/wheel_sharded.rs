//! Cost profile of the sharded per-CPU timer bases.
//!
//! Three axes, each swept over shard counts with the hierarchical wheel
//! as the per-base inner structure: pure schedule throughput (home-hash
//! placement), a drain-heavy advance (the lockstep per-base advance plus
//! the merge sort that restores global firing order), and a re-arm storm
//! from rotating CPUs (every re-arm migrates the timer between bases —
//! the `mod_timer`-from-another-CPU path the million-connection Apache
//! run hammers). The single-shard wrapper is included so the sharding
//! overhead over the bare structure is visible directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simtime::SimRng;
use wheel::{Backend, TimerQueue};

const SHARD_COUNTS: [u16; 4] = [1, 2, 4, 8];
const TIMERS: u64 = 65_536;

fn fresh(shards: u16) -> Box<dyn TimerQueue> {
    Backend::Hierarchical
        .with_shards(shards)
        .build(Backend::Hierarchical, 256)
}

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("wheel_sharded_schedule");
    for shards in SHARD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("hierarchical", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut q = fresh(shards);
                    let mut rng = SimRng::new(1);
                    for i in 0..TIMERS {
                        q.schedule(i, 1 + rng.range_u64(0, 100_000));
                    }
                    q.len()
                })
            },
        );
    }
    group.finish();
}

fn bench_advance_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("wheel_sharded_advance");
    for shards in SHARD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("hierarchical", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut q = fresh(shards);
                    let mut rng = SimRng::new(1);
                    for i in 0..TIMERS {
                        q.schedule(i, 1 + rng.range_u64(0, 100_000));
                    }
                    let mut fired = 0u64;
                    let mut now = 0;
                    while now < 100_001 {
                        now += 1_000;
                        q.advance_to(now, &mut |_, _| fired += 1);
                    }
                    fired
                })
            },
        );
    }
    group.finish();
}

/// Every pending timer re-armed from a different CPU each round: the
/// pure migration path (detach from one base, enqueue on another).
fn bench_migrate_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("wheel_sharded_migrate");
    for shards in SHARD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("hierarchical", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut q = fresh(shards);
                    let mut rng = SimRng::new(1);
                    for i in 0..8_192u64 {
                        q.schedule(i, 1 + rng.range_u64(0, 100_000));
                    }
                    for round in 0..8u64 {
                        for i in 0..8_192u64 {
                            q.set_context_cpu(Some(((i + round) % shards.max(1) as u64) as u32));
                            q.schedule(i, 200_000 + round);
                        }
                    }
                    q.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedule,
    bench_advance_drain,
    bench_migrate_storm
);
criterion_main!(benches);
