//! Workspace root: re-exports the `timerstudy` experiment API.
//!
//! See `timerstudy` for the experiment API; examples live in `examples/`
//! and cross-crate integration tests in `tests/`.

pub use timerstudy::*;
