//! Using the adaptive-timeout library (paper §5.1) directly.
//!
//! A client calls a file server. Instead of the programmer's arbitrary
//! "30 seconds", the timeout is learned: "time out once the system is
//! 99 % confident that a message will never be arriving."
//!
//! ```sh
//! cargo run --release --example adaptive_timeouts
//! ```

use adaptive::{AdaptiveTimeout, RttEstimator};
use simtime::{LogNormal, Sample, SimDuration, SimRng};

fn main() {
    let mut rng = SimRng::new(1);

    // --- A learned RPC timeout ------------------------------------------
    let mut timeout = AdaptiveTimeout::new(0.99, SimDuration::from_secs(30));
    let server = LogNormal::from_median(0.130, 0.35); // ~130 ms RTT.

    println!(
        "before any samples, the timeout is the legacy constant: {}",
        timeout.timeout()
    );
    for _ in 0..2_000 {
        timeout.observe_success(server.sample_duration(&mut rng));
    }
    println!(
        "after 2000 observed replies it has learned:            {}",
        timeout.timeout()
    );
    println!(
        "(a dead server is now detected ~{}x faster than with 30 s)\n",
        (30.0 / timeout.timeout().as_secs_f64()).round()
    );

    // A failure: three consecutive timeouts trigger the level-shift
    // handling, so a real environment change re-learns instead of
    // failing forever.
    timeout.observe_timeout();
    timeout.observe_timeout();
    timeout.observe_timeout();
    println!(
        "after a run of timeouts, it backs off and re-learns:   {}",
        timeout.timeout()
    );
    println!("level-shift resets so far: {}\n", timeout.resets());

    // --- The kernel's own adaptive timer, for comparison ----------------
    let mut rtt = RttEstimator::new();
    println!("TCP-style estimator (Jacobson/Karels + Karn):");
    println!("  initial RTO: {}", rtt.rto());
    for _ in 0..100 {
        let sample = SimDuration::from_micros(800 + rng.range_u64(0, 600));
        rtt.on_ack(sample);
    }
    println!(
        "  after 100 sub-millisecond ACKs: RTO = {} (clamped at the 200 ms floor)",
        rtt.rto()
    );
    let backed_off = rtt.on_timeout();
    println!("  one loss event backs it off to: {backed_off}");
}
