//! Record a workload into the relayfs-style binary ring buffer and dump
//! it as text — the paper's §3.2 offline pipeline, end to end.
//!
//! ```sh
//! cargo run --release --example dump_trace
//! ```

use simtime::SimDuration;
use trace::{RingBuffer, RingSink};
use workloads::{run_linux, Workload};

fn main() {
    // Ten simulated seconds of the idle desktop into a binary ring.
    let sink = RingSink::new(RingBuffer::new(64 * 1024 * 1024));
    let kernel = run_linux(
        Workload::Idle,
        7,
        SimDuration::from_secs(10),
        Box::new(sink),
    );
    let strings = kernel.log().strings();
    // Recover the ring from the kernel's sink for offline processing.
    let counts = kernel.log().counts();
    println!(
        "captured {} timer operations ({} bytes of binary records)\n",
        counts.accesses,
        counts.accesses as usize * trace::codec::RECORD_SIZE
    );

    // The §3.2 step: convert binary records to the textual format.
    // (Here we re-trace into a fresh ring since the sink stays inside the
    // kernel; the analyzer normally consumes events directly.)
    let sink2 = RingSink::new(RingBuffer::new(64 * 1024 * 1024));
    let mut kernel2 = run_linux(
        Workload::Idle,
        7,
        SimDuration::from_secs(10),
        Box::new(sink2),
    );
    let ring = kernel2
        .log_mut()
        .sink_mut()
        .as_any_mut()
        .and_then(|a| a.downcast_mut::<RingSink>())
        .map(|s| std::mem::replace(s, RingSink::new(RingBuffer::new(trace::codec::RECORD_SIZE))))
        .expect("ring sink")
        .into_ring();
    let text = trace::text::dump_ring(&ring, strings).expect("decode");
    println!("first 15 lines of the textual trace:");
    for line in text.lines().take(15) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", text.lines().count());
}
