//! Quickstart: trace one workload and look at what the timers did.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use simtime::SimDuration;
use timerstudy::{render, run_experiment, ExperimentSpec, Os, Workload};

fn main() {
    // Five simulated minutes of an idle Linux desktop.
    let result = run_experiment(ExperimentSpec::new(
        Os::Linux,
        Workload::Idle,
        SimDuration::from_secs(300),
        42,
    ));

    let s = &result.report.summary;
    println!(
        "traced {} timer-subsystem accesses over 5 simulated minutes",
        s.accesses
    );
    println!(
        "  distinct timers: {}   peak concurrency: {}",
        s.timers, s.concurrency
    );
    println!(
        "  set {} / expired {} / canceled {}",
        s.set, s.expired, s.canceled
    );
    println!("  user-space {} vs kernel {}", s.user_space, s.kernel);
    println!(
        "  instrumentation cost (modeled at the paper's 236 cycles/record): {}",
        result.logging_overhead
    );
    println!();

    // The paper's headline: timer values are round, human-chosen numbers.
    println!(
        "{}",
        render::values_chart(
            &result.report.values_filtered,
            true,
            "most common timeout values (X/icewm select loops filtered):",
        )
    );

    // And how timers are being used.
    println!(
        "{}",
        render::pattern_chart(&[("Idle", &result.report.pattern_mix)])
    );
}
