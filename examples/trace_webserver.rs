//! Trace the webserver workload on both OS models and compare — the
//! clearest mechanism contrast in the paper: Linux arms per-socket kernel
//! timers, Vista's re-architected TCP stack absorbs them into a timing
//! wheel.
//!
//! ```sh
//! cargo run --release --example trace_webserver
//! ```

use simtime::SimDuration;
use timerstudy::{render, run_experiment, ExperimentSpec, Os, Workload};

fn main() {
    let duration = SimDuration::from_secs(300);
    let linux = run_experiment(ExperimentSpec::new(
        Os::Linux,
        Workload::Webserver,
        duration,
        11,
    ));
    let vista = run_experiment(ExperimentSpec::new(
        Os::Vista,
        Workload::Webserver,
        duration,
        11,
    ));

    println!("webserver under httperf-style load, 5 simulated minutes\n");
    let (l, v) = (&linux.report.summary, &vista.report.summary);
    println!("                     Linux      Vista");
    println!("kernel accesses   {:>8}   {:>8}", l.kernel, v.kernel);
    println!(
        "user accesses     {:>8}   {:>8}",
        l.user_space, v.user_space
    );
    println!("sets              {:>8}   {:>8}", l.set, v.set);
    println!("canceled          {:>8}   {:>8}", l.canceled, v.canceled);
    println!();
    println!("Linux is kernel-dominated (per-socket delack/RTO/keepalive timers);");
    println!("Vista's kernel barely notices — its TCP timing wheel absorbs the");
    println!("per-connection timeouts and only the wheel tick touches KTIMERs.\n");

    println!(
        "{}",
        render::values_chart(
            &linux.report.values_all,
            true,
            "Linux webserver timeout values (the Table 3 constants):"
        )
    );
    println!(
        "{}",
        render::scatter_plot(
            &linux.report.scatter,
            "Linux webserver: where in its life each timer ended (Figure 11a)"
        )
    );
}
