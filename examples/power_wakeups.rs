//! Idle-power wakeups and batching (paper §2.1 / §5.3).
//!
//! ```sh
//! cargo run --release --example power_wakeups
//! ```

use adaptive::{Coalescer, TimeSpec};
use linuxsim::{LinuxConfig, LinuxKernel};
use simtime::{SimDuration, SimInstant};
use trace::NullSink;

fn idle_wakeup_rate(dynticks: bool, round: bool, defer: bool) -> f64 {
    let cfg = LinuxConfig {
        seed: 9,
        dynticks,
        round_all_periodics: round,
        defer_all_periodics: defer,
        ..LinuxConfig::default()
    };
    let mut kernel = LinuxKernel::new(cfg, Box::new(NullSink));
    kernel.set_idle(true);
    kernel.advance_to(SimInstant::BOOT + SimDuration::from_secs(120));
    kernel.cpu().wakeups() as f64 / 120.0
}

fn main() {
    println!("An idle CPU is woken for every timer tick and expiry. The kernel");
    println!("features the paper discusses (2.1) trade timer precision for sleep:\n");
    println!(
        "  always ticking (HZ=250):       {:>8.1} wakeups/s",
        idle_wakeup_rate(false, false, false)
    );
    println!(
        "  dynticks:                      {:>8.1} wakeups/s",
        idle_wakeup_rate(true, false, false)
    );
    println!(
        "  dynticks + round_jiffies:      {:>8.1} wakeups/s",
        idle_wakeup_rate(true, true, false)
    );
    println!(
        "  dynticks + deferrable timers:  {:>8.1} wakeups/s",
        idle_wakeup_rate(true, false, true)
    );
    println!(
        "  all three:                     {:>8.1} wakeups/s",
        idle_wakeup_rate(true, true, true)
    );

    // Section 5.3's generalisation: say what you mean ("wake me at some
    // convenient time in the next ten minutes") and let a coalescer find
    // the minimum number of wakeups.
    let boot = SimInstant::BOOT;
    let mut coalescer = Coalescer::new();
    let mut id = 0;
    for period_ms in [500u64, 1_000, 2_000, 5_000, 5_000, 2_000, 248, 1_000] {
        let mut t = period_ms;
        while t <= 30_000 {
            coalescer.add(
                id,
                TimeSpec::Window {
                    earliest: boot + SimDuration::from_millis(t - period_ms / 3),
                    latest: boot + SimDuration::from_millis(t + period_ms / 3),
                },
            );
            id += 1;
            t += period_ms;
        }
    }
    let plan = coalescer.plan(boot + SimDuration::from_secs(60));
    println!(
        "\nTimeSpec windows + minimal stabbing: {} housekeeping expiries need only {} wakeups ({} naive)",
        coalescer.len(),
        plan.len(),
        coalescer.naive_wakeup_count()
    );
}
