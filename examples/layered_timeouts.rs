//! The layered-timeout cascade (paper §2.2.2) and the dependency-aware
//! fix (§5.2 / §5.4).
//!
//! ```sh
//! cargo run --release --example layered_timeouts
//! ```

use adaptive::deps::{DepGraph, OverlapKind, Relation};
use adaptive::usecase::{guard_registry, guard_stats, TimeoutGuard};
use adaptive::ExponentialBackoff;
use netsim::rpc::sunrpc_retry_loop;
use netsim::{LookupService, ServiceBehavior};
use simtime::{SimDuration, SimInstant, SimRng};

fn main() {
    let mut rng = SimRng::new(3);

    // The user mistypes a server name. NFS-over-SunRPC retries the
    // refused connection 7 times, doubling from 500 ms:
    let nfs = LookupService::new(
        "NFS",
        ServiceBehavior::Refused {
            latency: SimDuration::from_millis(2),
        },
    );
    let (_, elapsed) = sunrpc_retry_loop(&nfs, SimDuration::from_millis(500), 7, &mut rng);
    println!(
        "NFS gives up after {elapsed} — \"recovering from a typing error can take over a minute!\""
    );
    println!(
        "  (the arithmetic: {} of pure backoff)\n",
        ExponentialBackoff::total_after(
            SimDuration::from_millis(500),
            2.0,
            SimDuration::from_secs(64),
            7
        )
    );

    // Declaring the relationships lets the timer system do better.
    let boot = SimInstant::BOOT;
    let at = |secs| boot + SimDuration::from_secs(secs);
    let mut graph = DepGraph::new();
    graph.declare(1, "shell:open_server", boot, at(10)); // What the user will tolerate.
    graph.declare(2, "smb:connect", boot, at(30));
    graph.declare(3, "nfs:sunrpc", boot, at(64));
    graph.declare(4, "webdav:connect", boot, at(30));
    // Only the earliest of (outer, each alternative) matters: rule (b).
    graph.relate(3, 1, Relation::Overlaps(OverlapKind::MinMatters));
    graph.relate(2, 1, Relation::Overlaps(OverlapKind::MinMatters));
    graph.relate(4, 1, Relation::Overlaps(OverlapKind::MinMatters));
    // Provenance: every protocol attempt exists on behalf of the user's
    // open-server action.
    graph.relate(1, 2, Relation::DependsOn);
    graph.relate(1, 3, Relation::DependsOn);
    graph.relate(1, 4, Relation::DependsOn);
    println!(
        "with overlap rules, {} of 4 timers actually need arming: {:?}",
        graph.required_armed().len(),
        graph.required_armed()
    );
    println!(
        "provenance chain of the NFS timer: {:?}\n",
        graph.trace_path(3)
    );

    // The RAII guard idiom with nested-timeout elision (§5.4).
    let reg = guard_registry();
    let outer = TimeoutGuard::arm(&reg, boot, SimDuration::from_secs(10));
    {
        let _name_lookup = TimeoutGuard::arm(&reg, boot, SimDuration::from_secs(5));
        let _smb = TimeoutGuard::arm(&reg, boot, SimDuration::from_secs(30)); // Elided!
        let _nfs = TimeoutGuard::arm(&reg, boot, SimDuration::from_secs(64)); // Elided!
    }
    let stats = guard_stats(&reg);
    println!(
        "nested guards: {} armed, {} elided as looser than the enclosing deadline",
        stats.armed, stats.elided
    );
    println!(
        "the user sees failure at {}, not after a minute",
        outer.deadline()
    );
}
