//! Offline stand-in for `rand` (see `vendor/README.md`).
//!
//! The repository's own code uses `simtime::SimRng` for all simulation
//! randomness; this crate exists so `Cargo.toml` references resolve
//! offline. It still offers a tiny deterministic generator in case a
//! future test reaches for the familiar API.

/// A deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Seeds the generator.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// The subset of the `Rng` trait the stand-in supports.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[lo, hi)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.next_u64() % (range.end - range.start)
    }

    /// A random boolean.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = a.gen_range(10..20);
            assert_eq!(x, b.gen_range(10..20));
            assert!((10..20).contains(&x));
        }
    }
}
