//! Offline stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! A `Mutex` over `std::sync::Mutex` with the parking_lot calling
//! convention: `lock()` returns the guard directly and ignores poisoning
//! (a panicked holder does not poison the data for later readers).

use std::fmt;
use std::sync::PoisonError;

/// Guard alias; derefs to the protected data like the real crate's guard.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with infallible `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
