//! Offline stand-in for `bytes` (see `vendor/README.md`).
//!
//! Provides the contiguous-buffer subset the trace codec uses: `Buf` over
//! `&[u8]`, `BufMut` over `&mut [u8]` and [`BytesMut`], with the
//! little-endian fixed-width accessors.

use std::ops::{Deref, DerefMut};

/// Read access to a contiguous byte cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a byte accumulator.
pub trait BufMut {
    /// Appends `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for &mut [u8] {
    /// Writes to the front of the slice and shrinks it, like the real crate.
    ///
    /// # Panics
    ///
    /// Panics if the slice is shorter than `src`.
    fn put_slice(&mut self, src: &[u8]) {
        let (head, tail) = std::mem::take(self).split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

/// A growable byte buffer (`Vec<u8>` underneath).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Empties the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Stored bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Consumes the buffer into its backing vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_fields() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_u8(0xaa);
        buf.put_u16_le(0xbbcc);
        buf.put_u32_le(0xdead_beef);
        let mut slice = &buf[..];
        assert_eq!(slice.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(slice.get_u8(), 0xaa);
        assert_eq!(slice.get_u16_le(), 0xbbcc);
        assert_eq!(slice.get_u32_le(), 0xdead_beef);
        assert_eq!(slice.remaining(), 0);
    }

    #[test]
    fn mut_slice_writes_front_to_back() {
        let mut backing = [0u8; 6];
        let mut cursor = &mut backing[..];
        cursor.put_u16_le(0x0201);
        cursor.put_u32_le(0x0605_0403);
        assert_eq!(backing, [1, 2, 3, 4, 5, 6]);
    }
}
