//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset this repository's property tests use: the
//! [`Strategy`] trait with `prop_map`/`boxed`, range, tuple, [`Just`] and
//! `any::<T>()` strategies, `collection::vec`, `option::of`,
//! `prop_oneof!`, and the `proptest!` / `prop_assert*` macros. Cases are
//! generated from a deterministic per-test RNG (seeded from the test's
//! module path and name), so runs are reproducible; there is no shrinking
//! — a failing case panics with the generated inputs' debug rendering.

pub mod test_runner {
    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds directly.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Seeds from a test's fully qualified name (FNV-1a).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::new(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// A random boolean.
        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with its message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(msg) => f.write_str(msg),
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe producing random values of one type.
    pub trait Strategy {
        /// The produced type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds from the alternatives; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text debuggable.
            (0x20u8 + rng.below(0x5f) as u8) as char
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy behind [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Accepted size specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// The strategy behind [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy behind [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// A strategy producing `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current property case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            left,
            right,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the current property case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            left,
            right,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Uniform choice between strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a regular test that draws `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let mut desc = String::new();
                $(
                    desc.push_str(stringify!($arg));
                    desc.push_str(" = ");
                    desc.push_str(&format!("{:?}", &$arg));
                    desc.push('\n');
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\ninputs:\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err,
                        desc,
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u64..10), &mut rng);
            assert!((5..10).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::new(8);
        let strat = crate::collection::vec(0u32..3, 2..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_covers_every_arm() {
        let mut rng = TestRng::new(9);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = crate::collection::vec(0u64..1_000_000, 0..50);
        let a: Vec<Vec<u64>> = {
            let mut rng = TestRng::from_name("fixed");
            (0..20).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<Vec<u64>> = {
            let mut rng = TestRng::from_name("fixed");
            (0..20).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_pipeline_works(
            xs in crate::collection::vec(0u32..100, 0..20),
            flag in any::<bool>(),
        ) {
            let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            for (&d, &x) in doubled.iter().zip(&xs) {
                prop_assert!(d == 2 * x, "{d} != 2*{x}");
            }
            prop_assert_ne!(u32::from(flag), 2);
        }
    }
}
