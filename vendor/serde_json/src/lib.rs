//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! `to_string` renders the value's `Debug` formatting — deterministic and
//! structurally complete, which is all this repository relies on (byte
//! equality between two serialisations of equal values). `from_str`
//! cannot reconstruct values without real serde and always errors.

use std::fmt;

/// Error type for (de)serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Renders `value` as its `Debug` formatting.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(format!("{value:?}"))
}

/// Multi-line variant; debug-pretty formatting.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(format!("{value:#?}"))
}

/// Unsupported in the offline stand-in: always returns `Err`.
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error(
        "serde_json::from_str is unsupported in the vendored offline stand-in".to_owned(),
    ))
}
