//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! `Serialize` is a marker trait with a `Debug` supertrait and a blanket
//! impl: any `Debug` type "serialises" by way of its debug formatting
//! (which is what the vendored `serde_json::to_string` renders). The repo
//! only ever compares serialised output for equality, so debug formatting
//! is a faithful determinism witness even though it is not JSON.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serialisable values; satisfied by every `Debug` type.
pub trait Serialize: std::fmt::Debug {}

impl<T: std::fmt::Debug + ?Sized> Serialize for T {}

/// Marker for deserialisable values. The vendored `serde_json::from_str`
/// cannot construct values, so this carries no behaviour.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialisation alias mirroring the real crate's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
