//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Supports the declaration surface the `bench` crate uses and performs a
//! simple wall-clock measurement per benchmark: a short warm-up, then
//! batches timed until a fixed budget elapses, reporting the best
//! per-iteration time. No statistics, plots, or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Collects and runs benchmarks.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            _parent: self,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the group's throughput basis (ignored by the stand-in).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an identifier.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Throughput basis for a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives the iteration closure and measures it.
#[derive(Debug, Default)]
pub struct Bencher {
    best_ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Measures `f`, keeping the best observed per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a batch size targeting ~10 ms per batch.
        let warmup = Instant::now();
        let mut iters = 0u64;
        while warmup.elapsed() < Duration::from_millis(50) {
            black_box(f());
            iters += 1;
        }
        let per_iter = Duration::from_millis(50).as_nanos() as f64 / iters.max(1) as f64;
        let batch = ((10_000_000.0 / per_iter) as u64).max(1);
        let budget = Instant::now();
        let mut best = f64::INFINITY;
        while budget.elapsed() < Duration::from_millis(300) {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
        }
        self.best_ns_per_iter = Some(best);
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    match bencher.best_ns_per_iter {
        Some(ns) if ns >= 1_000_000.0 => println!("{name}: {:.3} ms/iter", ns / 1e6),
        Some(ns) if ns >= 1_000.0 => println!("{name}: {:.3} us/iter", ns / 1e3),
        Some(ns) => println!("{name}: {ns:.1} ns/iter"),
        None => println!("{name}: no measurement"),
    }
}

/// Declares a benchmark group runner, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring the real macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
