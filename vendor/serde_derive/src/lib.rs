//! No-op `Serialize` / `Deserialize` derives.
//!
//! The vendored `serde` stand-in provides blanket trait impls, so the
//! derive macros have nothing to emit; they exist so `#[derive(Serialize,
//! Deserialize)]` keeps compiling unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
