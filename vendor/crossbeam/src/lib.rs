//! Offline stand-in for `crossbeam` (see `vendor/README.md`).
//!
//! Provides `crossbeam::thread::scope` with the crossbeam 0.8 calling
//! convention (spawn closures receive the scope, `scope()` returns `Err`
//! if a child panicked) implemented over `std::thread::scope`.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// `Ok` unless a spawned thread panicked.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle; threads spawned through it are joined before
    /// [`scope`] returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it
        /// can spawn further threads, as in the real crate.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined on exit.
    /// A panic in any spawned thread surfaces as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let hits = AtomicU32::new(0);
        let out = super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .expect("no panics");
        assert_eq!(out, 7);
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn child_panic_is_reported() {
        let res = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicU32::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .expect("no panics");
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
