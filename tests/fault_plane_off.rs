//! The fault plane's zero-cost-when-off contract: an experiment carrying
//! an explicit `FaultSpec::none()` is *the same experiment* as one that
//! never heard of faults — same cache key, bit-identical report, counters
//! and rendered artifacts. This is what lets the fault machinery live on
//! the main experiment path without threatening the determinism harness
//! in `parallel_determinism.rs` or the committed `artifacts/`.

use simtime::SimDuration;
use timerstudy::cache::ExperimentCache;
use timerstudy::experiment::{run_experiments, table_specs};
use timerstudy::figures::{assemble, paper_specs, paper_specs_faulted};
use timerstudy::{ExperimentSpec, FaultSpec, Os, Workload};

const SECS: u64 = 20;

/// One spec per OS plus the Outlook desktop: enough to cross every
/// workload runner's faulted entry point.
fn specs_under_test() -> Vec<ExperimentSpec> {
    let duration = SimDuration::from_secs(SECS);
    let mut specs = table_specs(Os::Linux, duration, 77);
    specs.extend(table_specs(Os::Vista, duration, 77));
    specs.push(ExperimentSpec::new(
        Os::Vista,
        Workload::Outlook,
        duration,
        77,
    ));
    specs
}

#[test]
fn none_faults_reports_are_bit_identical() {
    let plain = specs_under_test();
    let explicit: Vec<ExperimentSpec> = plain
        .iter()
        .map(|s| s.with_faults(FaultSpec::none()))
        .collect();
    let a = run_experiments(&plain);
    let b = run_experiments(&explicit);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.spec, y.spec, "none() must not change the spec");
        assert_eq!(
            serde_json::to_string(&x.report).unwrap(),
            serde_json::to_string(&y.report).unwrap(),
            "report differs for {:?}/{:?}",
            x.spec.os,
            x.spec.workload
        );
        assert_eq!(x.records, y.records);
        assert_eq!(x.wakeups, y.wakeups);
        assert_eq!(x.busy, y.busy);
        assert_eq!(x.logging_overhead, y.logging_overhead);
        assert_eq!(x.report.summary.dropped_records, 0);
        assert_eq!(x.report.summary.orphan_ends, 0);
    }
}

#[test]
fn none_faults_hits_the_same_cache_entry() {
    let specs = specs_under_test();
    let cache = ExperimentCache::new();
    cache.run_all(&specs);
    let misses = cache.misses();
    // Re-requesting through with_faults(none()) must be all cache hits.
    let explicit: Vec<ExperimentSpec> = specs
        .iter()
        .map(|s| s.with_faults(FaultSpec::none()))
        .collect();
    cache.run_all(&explicit);
    assert_eq!(
        cache.misses(),
        misses,
        "FaultSpec::none() forked the cache key"
    );
    assert_eq!(cache.hits(), specs.len() as u64);
}

#[test]
fn none_faults_artifacts_match_the_clean_pipeline() {
    let duration = SimDuration::from_secs(SECS);
    let clean = assemble(&run_experiments(&paper_specs(duration, 7)));
    let faulted_off = assemble(&run_experiments(&paper_specs_faulted(
        duration,
        7,
        FaultSpec::none(),
    )));
    assert_eq!(clean.len(), faulted_off.len());
    for (c, f) in clean.iter().zip(&faulted_off) {
        assert_eq!(c.printable(), f.printable(), "artifact text differs");
        assert_eq!(c.csv, f.csv, "artifact csv differs");
        // No fault-accounting rows may leak into a clean rendering.
        assert!(
            !c.text.contains("Dropped records"),
            "clean artifact mentions drops:\n{}",
            c.text
        );
    }
}

#[test]
fn active_faults_key_their_own_cache_entries() {
    let duration = SimDuration::from_secs(SECS);
    let base = ExperimentSpec::new(Os::Linux, Workload::Skype, duration, 7);
    let cache = ExperimentCache::new();
    cache.run_all(&[
        base,
        base.with_faults(FaultSpec::ring_drops()),
        base.with_faults(FaultSpec::net_burst()),
        base.with_faults(FaultSpec::clock_jitter()),
    ]);
    assert_eq!(
        cache.misses(),
        4,
        "each distinct fault plane must run separately"
    );
    assert_eq!(cache.hits(), 0);
}
