//! Cross-crate integration tests: full experiments through the public API.

use simtime::SimDuration;
use timerstudy::{run_experiment, ExperimentSpec, Os, Workload};

fn spec(os: Os, workload: Workload, secs: u64) -> ExperimentSpec {
    ExperimentSpec::new(os, workload, SimDuration::from_secs(secs), 99)
}

#[test]
fn report_internal_consistency_linux() {
    let r = run_experiment(spec(Os::Linux, Workload::Skype, 90));
    let s = &r.report.summary;
    // Accesses decompose exactly into the event kinds.
    assert_eq!(s.accesses, s.set + s.expired + s.canceled + init_count(&r));
    assert_eq!(s.accesses, s.user_space + s.kernel);
    assert!(s.concurrency <= s.timers);
    assert!(s.timers > 10);
    // Records logged equals accesses (every operation logged once).
    assert_eq!(r.records, s.accesses);
}

fn init_count(r: &timerstudy::experiment::ExperimentResult) -> u64 {
    // init = accesses - (set + expired + canceled); sanity-checked > 0.
    let s = &r.report.summary;
    let init = s.accesses - s.set - s.expired - s.canceled;
    assert!(init > 0, "some timers must have been initialised");
    init
}

#[test]
fn report_internal_consistency_vista() {
    let r = run_experiment(spec(Os::Vista, Workload::Skype, 90));
    let s = &r.report.summary;
    assert_eq!(s.accesses, s.user_space + s.kernel);
    assert!(s.set >= s.expired, "cannot expire more than was set");
}

#[test]
fn scatter_respects_paper_conventions() {
    let r = run_experiment(spec(Os::Linux, Workload::Webserver, 120));
    assert!(!r.report.scatter.is_empty());
    for p in &r.report.scatter {
        assert!(p.percent <= 250.0, "cut off above 250%");
        assert!(p.seconds > 0.0);
        assert!(p.count > 0);
    }
    // Late delivery must produce some points above 100 %.
    assert!(
        r.report.scatter.iter().any(|p| p.percent > 100.0),
        "jiffy-quantised delivery must push points past 100%"
    );
    // And cancellations produce points below 100 %.
    assert!(r.report.scatter.iter().any(|p| p.percent < 100.0));
}

#[test]
fn value_rows_respect_two_percent_rule() {
    let r = run_experiment(spec(Os::Linux, Workload::Firefox, 60));
    for row in &r.report.values_all {
        assert!(row.percent >= 2.0);
    }
    assert!(r.report.values_all_coverage <= 100.0 + 1e-9);
}

#[test]
fn fig4_dots_exhibit_countdown() {
    let r = run_experiment(spec(Os::Linux, Workload::Idle, 300));
    let dots = &r.report.fig4_dots;
    assert!(dots.len() > 50, "X must have set many select timeouts");
    // Within the trace, consecutive dot values decline (countdown) except
    // at chain restarts; verify at least 60 % of steps decline.
    let declining = dots.windows(2).filter(|w| w[1].value < w[0].value).count();
    assert!(
        declining as f64 >= 0.6 * (dots.len() - 1) as f64,
        "countdown sawtooth expected: {declining}/{}",
        dots.len() - 1
    );
    // The detector found the countdown timers without using flags.
    assert!(r.report.countdown_timer_count >= 1);
    let (detected, flagged) = r.report.countdown_validation;
    assert!(flagged > 0);
    let recall = detected as f64 / flagged as f64;
    assert!(recall > 0.9, "detector recall = {recall}");
}

#[test]
fn full_experiment_is_deterministic() {
    let a = run_experiment(spec(Os::Linux, Workload::Skype, 60));
    let b = run_experiment(spec(Os::Linux, Workload::Skype, 60));
    let ja = serde_json::to_string(&a.report).unwrap();
    let jb = serde_json::to_string(&b.report).unwrap();
    assert_eq!(ja, jb, "same seed must give byte-identical reports");
}

#[test]
fn vista_experiment_is_deterministic() {
    let a = run_experiment(spec(Os::Vista, Workload::Firefox, 45));
    let b = run_experiment(spec(Os::Vista, Workload::Firefox, 45));
    assert_eq!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap()
    );
}

#[test]
fn reports_serialize_stably_and_completely() {
    // The vendored serde_json stand-in renders debug formatting and does
    // not support deserialisation (vendor/README.md), so instead of a
    // from_str round-trip this pins what equality comparisons elsewhere
    // rely on: serialisation is total, deterministic, and reflects the
    // report's observable fields.
    let r = run_experiment(spec(Os::Vista, Workload::Idle, 45));
    let json = serde_json::to_string(&r.report).unwrap();
    assert_eq!(json, serde_json::to_string(&r.report).unwrap());
    assert!(json.contains(&r.report.summary.accesses.to_string()));
    assert!(json.contains("scatter"));
    let again = run_experiment(spec(Os::Vista, Workload::Idle, 45));
    assert_eq!(json, serde_json::to_string(&again.report).unwrap());
}

#[test]
fn logging_overhead_is_negligible() {
    // The paper: < 0.1 % CPU overhead from instrumentation.
    let r = run_experiment(spec(Os::Linux, Workload::Firefox, 60));
    let overhead = r.logging_overhead.as_secs_f64();
    let run = 60.0;
    assert!(
        overhead / run < 0.001,
        "modeled instrumentation overhead {:.4}% must stay under 0.1%",
        100.0 * overhead / run
    );
}
