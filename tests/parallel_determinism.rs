//! Differential harness: parallel and cached execution must be
//! bit-identical to the serial reference path.
//!
//! Experiments are pure functions of their [`ExperimentSpec`], so the
//! parallel runner and the memoising cache may change wall-clock time
//! and nothing else. These tests pin that contract at every level the
//! reproduction exposes: full `Report`s (compared through their stable
//! serialization), the raw run counters (records, wakeups, busy time),
//! and the rendered artifacts `repro_all` prints.

use simtime::SimDuration;
use timerstudy::cache::ExperimentCache;
use timerstudy::experiment::{run_experiments, table_specs};
use timerstudy::figures::{assemble, paper_specs};
use timerstudy::parallel::{run_experiments_parallel_with, run_trials};
use timerstudy::{ExperimentResult, ExperimentSpec, Os, Workload};

/// Short traces keep the suite fast; every workload still runs long
/// enough to exercise thousands of timer operations.
const SECS: u64 = 20;

fn specs_under_test() -> Vec<ExperimentSpec> {
    let duration = SimDuration::from_secs(SECS);
    let mut specs = table_specs(Os::Linux, duration, 1234);
    specs.extend(table_specs(Os::Vista, duration, 1234));
    specs.push(ExperimentSpec::new(
        Os::Vista,
        Workload::Outlook,
        duration,
        1234,
    ));
    specs
}

/// The strongest equality we can state: the full serialized report plus
/// every raw counter the experiment produces.
fn assert_results_identical(serial: &[ExperimentResult], other: &[ExperimentResult], what: &str) {
    assert_eq!(serial.len(), other.len(), "{what}: result count differs");
    for (s, o) in serial.iter().zip(other) {
        assert_eq!(s.spec, o.spec, "{what}: results out of order");
        assert_eq!(
            serde_json::to_string(&s.report).unwrap(),
            serde_json::to_string(&o.report).unwrap(),
            "{what}: report differs for {:?}/{:?}",
            s.spec.os,
            s.spec.workload
        );
        assert_eq!(s.records, o.records, "{what}: record count differs");
        assert_eq!(s.wakeups, o.wakeups, "{what}: wakeup count differs");
        assert_eq!(s.busy, o.busy, "{what}: busy time differs");
        assert_eq!(
            s.logging_overhead, o.logging_overhead,
            "{what}: logging overhead differs"
        );
    }
}

#[test]
fn parallel_matches_serial_bit_for_bit() {
    let specs = specs_under_test();
    let serial = run_experiments(&specs);
    for threads in [2, 4, 9] {
        let parallel = run_experiments_parallel_with(&specs, threads);
        assert_results_identical(&serial, &parallel, &format!("{threads} threads"));
    }
}

#[test]
fn cache_matches_serial_and_runs_each_distinct_spec_once() {
    let specs = specs_under_test();
    let serial = run_experiments(&specs);

    // Request every spec twice, interleaved: 18 requests, 9 distinct.
    let mut doubled = specs.clone();
    doubled.extend(specs.iter().copied());
    let cache = ExperimentCache::new();
    let results = cache.run_all(&doubled);

    assert_results_identical(&serial, &results[..specs.len()], "cache, first half");
    assert_results_identical(&serial, &results[specs.len()..], "cache, second half");
    assert_eq!(
        cache.misses(),
        specs.len() as u64,
        "each distinct spec must run exactly once"
    );
    assert_eq!(
        cache.hits(),
        specs.len() as u64,
        "each duplicate must be served from the cache"
    );
    assert_eq!(cache.len(), specs.len());

    // A second batch is answered entirely from the cache.
    let again = cache.run_all(&specs);
    assert_results_identical(&serial, &again, "cache, warm rerun");
    assert_eq!(cache.misses(), specs.len() as u64);
    assert_eq!(cache.hits(), 2 * specs.len() as u64);
}

#[test]
fn rendered_artifacts_identical_across_paths() {
    let duration = SimDuration::from_secs(SECS);
    let specs = paper_specs(duration, 7);

    let serial = assemble(&run_experiments(&specs));
    let parallel = assemble(&run_experiments_parallel_with(&specs, 4));
    let cache = ExperimentCache::new();
    let cached = assemble(&cache.run_all(&specs));

    assert_eq!(serial.len(), parallel.len());
    assert_eq!(serial.len(), cached.len());
    for ((s, p), c) in serial.iter().zip(&parallel).zip(&cached) {
        assert_eq!(s.printable(), p.printable(), "artifact text differs");
        assert_eq!(s.csv, p.csv, "artifact csv differs");
        assert_eq!(s.printable(), c.printable(), "cached artifact text differs");
        assert_eq!(s.csv, c.csv, "cached artifact csv differs");
    }
}

#[test]
fn trials_are_order_independent_and_distinct() {
    let base = ExperimentSpec::new(Os::Linux, Workload::Skype, SimDuration::from_secs(SECS), 42);
    let trials = run_trials(base, 4);
    assert_eq!(trials.len(), 4);
    // Trial 0 is byte-identical to a plain single run of the base spec.
    let single = run_experiments(&[base]);
    assert_results_identical(&single, &trials[..1], "trial 0");
    // Each trial saw an independent random stream: seeds all distinct,
    // and reports genuinely differ.
    for (i, a) in trials.iter().enumerate() {
        for b in &trials[i + 1..] {
            assert_ne!(a.spec.seed, b.spec.seed, "trials must get distinct seeds");
            assert_ne!(
                serde_json::to_string(&a.report).unwrap(),
                serde_json::to_string(&b.report).unwrap(),
                "distinct trials should produce distinct traces"
            );
        }
    }
    // Rerunning reproduces the same trials exactly.
    let rerun = run_trials(base, 4);
    assert_results_identical(&trials, &rerun, "trial rerun");
}
