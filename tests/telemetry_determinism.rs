//! Differential harness for the telemetry sim plane.
//!
//! Sim-plane metrics are pure functions of an [`ExperimentSpec`]: they
//! are derived only from virtual time and event counts, never from
//! wall-clock time, thread scheduling or cache state. These tests pin
//! that contract the same way `parallel_determinism.rs` pins it for
//! reports — per-experiment snapshots must be bit-identical across the
//! serial, parallel and cached execution paths, and the aggregated run
//! reports must agree on their canonical `sim` sections.

use simtime::SimDuration;
use timerstudy::cache::ExperimentCache;
use timerstudy::experiment::{run_experiments, table_specs};
use timerstudy::parallel::run_experiments_parallel_with;
use timerstudy::{ExperimentResult, ExperimentSpec, Os, Workload};

const SECS: u64 = 20;

fn specs_under_test() -> Vec<ExperimentSpec> {
    let duration = SimDuration::from_secs(SECS);
    let mut specs = table_specs(Os::Linux, duration, 1234);
    specs.extend(table_specs(Os::Vista, duration, 1234));
    specs.push(ExperimentSpec::new(
        Os::Vista,
        Workload::Outlook,
        duration,
        1234,
    ));
    specs
}

fn assert_sim_plane_identical(serial: &[ExperimentResult], other: &[ExperimentResult], what: &str) {
    assert_eq!(serial.len(), other.len(), "{what}: result count differs");
    for (s, o) in serial.iter().zip(other) {
        assert_eq!(s.spec, o.spec, "{what}: results out of order");
        assert_eq!(
            s.metrics, o.metrics,
            "{what}: sim-plane snapshot differs for {:?}/{:?}",
            s.spec.os, s.spec.workload
        );
    }
}

#[test]
fn sim_plane_identical_across_serial_parallel_and_cached() {
    let specs = specs_under_test();
    let serial = run_experiments(&specs);

    // Every experiment must actually have recorded sim-plane events —
    // an all-zero snapshot would make the equality below vacuous.
    for result in &serial {
        assert!(
            result.metrics.total_events() > 0,
            "no sim-plane events for {:?}/{:?}",
            result.spec.os,
            result.spec.workload
        );
    }

    for threads in [2, 4, 9] {
        let parallel = run_experiments_parallel_with(&specs, threads);
        assert_sim_plane_identical(&serial, &parallel, &format!("{threads} threads"));
    }

    // Cached path: duplicates are served the original run's snapshot.
    let mut doubled = specs.clone();
    doubled.extend(specs.iter().copied());
    let cache = ExperimentCache::new();
    let results = cache.run_all(&doubled);
    assert_sim_plane_identical(&serial, &results[..specs.len()], "cache, first half");
    assert_sim_plane_identical(&serial, &results[specs.len()..], "cache, second half");
    let warm = cache.run_all(&specs);
    assert_sim_plane_identical(&serial, &warm, "cache, warm rerun");
}

#[test]
fn run_reports_agree_on_the_canonical_sim_section() {
    let specs = specs_under_test();
    let serial = run_experiments(&specs);
    let parallel = run_experiments_parallel_with(&specs, 4);

    // Wall-plane inputs (threads, wall time) deliberately differ between
    // the two reports; the sim section must be identical anyway.
    let report_a = timerstudy::run_report(
        &serial,
        "serial",
        SECS,
        1234,
        1,
        std::time::Duration::from_millis(100),
    );
    let report_b = timerstudy::run_report(
        &parallel,
        "parallel",
        SECS,
        1234,
        4,
        std::time::Duration::from_millis(999),
    );

    let value_a = telemetry::json::parse(&report_a.to_json()).expect("report A parses");
    let value_b = telemetry::json::parse(&report_b.to_json()).expect("report B parses");
    telemetry::report::validate_value(&value_a).expect("report A schema-valid");
    telemetry::report::validate_value(&value_b).expect("report B schema-valid");
    assert_eq!(
        telemetry::report::sim_section_canonical(&value_a).expect("canonical A"),
        telemetry::report::sim_section_canonical(&value_b).expect("canonical B"),
        "canonical sim sections drifted between serial and parallel runs"
    );
}
