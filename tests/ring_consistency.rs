//! relayfs-path consistency: a trace recorded into the binary ring
//! buffer, decoded, and re-analysed must agree exactly with the streaming
//! analysis — the two methodology paths of Section 3 see the same events.

use analysis::{AnalyzerConfig, EventVisitor, TraceAnalyzer};
use simtime::{SimDuration, SimInstant};
use trace::{Event, PerCpuRings, RingBuffer, RingReader, RingSink, TraceSink};
use workloads::{run_linux, Workload};

/// A sink that both streams into an analyzer and records into a ring.
struct TeeSink {
    analyzer: TraceAnalyzer,
    ring: RingSink,
}

impl TraceSink for TeeSink {
    fn record(&mut self, event: &Event) {
        self.analyzer.push(event);
        self.ring.record(event);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[test]
fn ring_decode_matches_streaming_analysis() {
    let cfg = AnalyzerConfig::linux();
    let tee = TeeSink {
        analyzer: TraceAnalyzer::new(cfg.clone()),
        ring: RingSink::new(RingBuffer::new(128 * 1024 * 1024)),
    };
    let mut kernel = run_linux(
        Workload::Skype,
        17,
        SimDuration::from_secs(60),
        Box::new(tee),
    );
    let strings = kernel.log().strings().clone();
    let counts = kernel.log().counts();
    let tee = kernel
        .log_mut()
        .sink_mut()
        .as_any_mut()
        .unwrap()
        .downcast_mut::<TeeSink>()
        .map(|t| {
            let analyzer = std::mem::replace(&mut t.analyzer, TraceAnalyzer::new(cfg.clone()));
            let ring = std::mem::replace(
                &mut t.ring,
                RingSink::new(RingBuffer::new(trace::codec::RECORD_SIZE)),
            );
            (analyzer, ring)
        })
        .expect("tee sink");
    let (streaming, ring_sink) = tee;
    let ring = ring_sink.into_ring();

    // Nothing was dropped: the buffer was sized for the trace, like the
    // paper's 512 MiB relayfs buffer.
    assert_eq!(ring.dropped(), 0);
    assert_eq!(ring.record_count() as u64, counts.accesses);

    // Re-analyse from the decoded binary records.
    let mut replay = TraceAnalyzer::new(cfg);
    for event in RingReader::new(&ring) {
        replay.push(&event.expect("record decodes"));
    }
    let a = streaming.finish(&strings);
    let b = replay.finish(&strings);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "ring-decoded analysis must equal streaming analysis"
    );
}

#[test]
fn ring_records_are_fixed_size() {
    let ring = RingBuffer::new(1024 * 1024);
    assert_eq!(ring.capacity_bytes() % trace::codec::RECORD_SIZE, 0);
}

/// Satellite of the merged() error-path audit: damage on one CPU's ring
/// must lose only the damaged records, and the loss must surface in the
/// analysis summary's accounting (`decode_lost`), not silently discard
/// healthy CPUs' events.
#[test]
fn partial_decode_losses_flow_into_summary_accounting() {
    let rings = PerCpuRings::new(3, 64 * 1024);
    for i in 0..300u64 {
        let e = Event::new(
            SimInstant::BOOT + SimDuration::from_millis(i * 10),
            if i % 2 == 0 {
                trace::EventKind::Set
            } else {
                trace::EventKind::Expire
            },
            i / 2 % 7,
            0,
        )
        .with_timeout(SimDuration::from_millis(10));
        rings.log_on((i % 3) as usize, &e);
    }
    // Scribble a record on CPU 0 and tear CPU 2's tail.
    rings.with_ring_mut(0, |r| {
        r.overwrite(trace::codec::RECORD_SIZE * 5 + 8, &[0xEE])
    });
    rings.with_ring_mut(2, |r| {
        let keep = r.record_count() * trace::codec::RECORD_SIZE - trace::codec::RECORD_SIZE / 2;
        r.truncate_bytes(keep);
    });
    // The strict path refuses the whole readout…
    assert!(rings.merged().is_err());

    // …the lossy streaming path keeps every healthy record and accounts
    // both losses, which the analyzer folds into its summary.
    let mut analyzer = TraceAnalyzer::new(AnalyzerConfig::linux());
    let mut reader = rings.stream();
    let mut buf = Vec::new();
    let mut decoded = 0u64;
    while reader.read_chunk(&mut buf, 64) > 0 {
        decoded += buf.len() as u64;
        analyzer.visit_chunk(&buf);
    }
    let stats = reader.into_stats();
    assert_eq!(stats.lost_records, 2);
    assert_eq!(decoded, 300 - 2);
    analyzer.note_decode_lost(stats.lost_records);
    let report = analyzer.finish(&trace::StringTable::new());
    assert_eq!(report.summary.decode_lost, 2);
    assert_eq!(report.summary.accesses, decoded);

    // The surviving analysis equals analysing the surviving events
    // directly — no healthy record was dropped or reordered.
    let (survivors, stats2) = rings.merged_lossy();
    assert_eq!(stats2, stats);
    let mut direct = TraceAnalyzer::new(AnalyzerConfig::linux());
    direct.visit_chunk(&survivors);
    direct.note_decode_lost(stats2.lost_records);
    let direct_report = direct.finish(&trace::StringTable::new());
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&direct_report).unwrap(),
    );
}
