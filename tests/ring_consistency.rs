//! relayfs-path consistency: a trace recorded into the binary ring
//! buffer, decoded, and re-analysed must agree exactly with the streaming
//! analysis — the two methodology paths of Section 3 see the same events.

use analysis::{AnalyzerConfig, TraceAnalyzer};
use simtime::SimDuration;
use trace::{Event, RingBuffer, RingReader, RingSink, TraceSink};
use workloads::{run_linux, Workload};

/// A sink that both streams into an analyzer and records into a ring.
struct TeeSink {
    analyzer: TraceAnalyzer,
    ring: RingSink,
}

impl TraceSink for TeeSink {
    fn record(&mut self, event: &Event) {
        self.analyzer.push(event);
        self.ring.record(event);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[test]
fn ring_decode_matches_streaming_analysis() {
    let cfg = AnalyzerConfig::linux();
    let tee = TeeSink {
        analyzer: TraceAnalyzer::new(cfg.clone()),
        ring: RingSink::new(RingBuffer::new(128 * 1024 * 1024)),
    };
    let mut kernel = run_linux(
        Workload::Skype,
        17,
        SimDuration::from_secs(60),
        Box::new(tee),
    );
    let strings = kernel.log().strings().clone();
    let counts = kernel.log().counts();
    let tee = kernel
        .log_mut()
        .sink_mut()
        .as_any_mut()
        .unwrap()
        .downcast_mut::<TeeSink>()
        .map(|t| {
            let analyzer = std::mem::replace(&mut t.analyzer, TraceAnalyzer::new(cfg.clone()));
            let ring = std::mem::replace(
                &mut t.ring,
                RingSink::new(RingBuffer::new(trace::codec::RECORD_SIZE)),
            );
            (analyzer, ring)
        })
        .expect("tee sink");
    let (streaming, ring_sink) = tee;
    let ring = ring_sink.into_ring();

    // Nothing was dropped: the buffer was sized for the trace, like the
    // paper's 512 MiB relayfs buffer.
    assert_eq!(ring.dropped(), 0);
    assert_eq!(ring.record_count() as u64, counts.accesses);

    // Re-analyse from the decoded binary records.
    let mut replay = TraceAnalyzer::new(cfg);
    for event in RingReader::new(&ring) {
        replay.push(&event.expect("record decodes"));
    }
    let a = streaming.finish(&strings);
    let b = replay.finish(&strings);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "ring-decoded analysis must equal streaming analysis"
    );
}

#[test]
fn ring_records_are_fixed_size() {
    let ring = RingBuffer::new(1024 * 1024);
    assert_eq!(ring.capacity_bytes() % trace::codec::RECORD_SIZE, 0);
}
