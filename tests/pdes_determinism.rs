//! Differential harness for the conservative parallel DES engine: a
//! `des_threads = N` experiment must be bit-identical to the serial
//! single-threaded pipeline for every `N` — same `Report`, same raw run
//! counters, same sim-plane telemetry snapshot (the `run_report.json`
//! sim section), same rendered artifacts — with the engine free to
//! change only wall-clock time and the wall-plane `des_*` counters.
//!
//! The contract holds under composition too: fault injection and
//! sharded timer bases ride through the parallel engine unchanged, and
//! the experiment cache keys on `des_threads`, so cached parallel
//! results replay exactly.

use simtime::SimDuration;
use timerstudy::cache::ExperimentCache;
use timerstudy::experiment::{run_experiments, table_specs};
use timerstudy::figures::assemble;
use timerstudy::{Backend, ExperimentResult, ExperimentSpec, FaultSpec, Os, Workload};

/// Short traces keep the suite fast; every workload still runs long
/// enough to exercise thousands of timer operations.
const SECS: u64 = 20;

/// Every parallel width under test, including the degenerate 1 and a
/// width above [`analysis::ANALYZER_PART_COUNT`]-per-worker saturation.
const WIDTHS: [u16; 4] = [1, 2, 4, 8];

fn specs_under_test() -> Vec<ExperimentSpec> {
    let duration = SimDuration::from_secs(SECS);
    let mut specs = table_specs(Os::Linux, duration, 1234);
    specs.extend(table_specs(Os::Vista, duration, 1234));
    specs.push(ExperimentSpec::new(
        Os::Vista,
        Workload::Outlook,
        duration,
        1234,
    ));
    specs
}

fn with_des(specs: &[ExperimentSpec], threads: u16) -> Vec<ExperimentSpec> {
    specs.iter().map(|s| s.with_des_threads(threads)).collect()
}

/// The strongest equality we can state across the two pipelines: the
/// full serialized report, every raw run counter, and the sim-plane
/// snapshot that becomes the `run_report.json` sim section. (The specs
/// themselves legitimately differ in `des_threads`, and the labels in
/// the ` des=N` suffix — that is the cache key doing its job.)
fn assert_equivalent(serial: &[ExperimentResult], des: &[ExperimentResult], what: &str) {
    assert_eq!(serial.len(), des.len(), "{what}: result count differs");
    for (s, d) in serial.iter().zip(des) {
        assert_eq!(
            s.spec,
            d.spec.with_des_threads(0),
            "{what}: results out of order"
        );
        assert_eq!(
            serde_json::to_string(&s.report).unwrap(),
            serde_json::to_string(&d.report).unwrap(),
            "{what}: report differs for {:?}/{:?}",
            s.spec.os,
            s.spec.workload
        );
        assert_eq!(s.records, d.records, "{what}: record count differs");
        assert_eq!(s.wakeups, d.wakeups, "{what}: wakeup count differs");
        assert_eq!(s.busy, d.busy, "{what}: busy time differs");
        assert_eq!(
            s.logging_overhead, d.logging_overhead,
            "{what}: logging overhead differs"
        );
        assert_eq!(
            s.metrics, d.metrics,
            "{what}: sim telemetry snapshot differs for {:?}/{:?}",
            s.spec.os, s.spec.workload
        );
    }
}

#[test]
fn des_threads_match_serial_bit_for_bit() {
    let specs = specs_under_test();
    let serial = run_experiments(&specs);
    for threads in WIDTHS {
        let des = run_experiments(&with_des(&specs, threads));
        assert_equivalent(&serial, &des, &format!("des_threads={threads}"));
    }
}

#[test]
fn des_artifacts_and_cache_replay_identical() {
    let duration = SimDuration::from_secs(SECS);
    let specs = timerstudy::figures::paper_specs(duration, 7);
    let serial = assemble(&run_experiments(&specs));

    for threads in [2u16, 8] {
        let des_specs = with_des(&specs, threads);
        let cache = ExperimentCache::new();
        let first = cache.run_all(&des_specs);
        let des = assemble(&first);
        assert_eq!(serial.len(), des.len());
        for (s, d) in serial.iter().zip(&des) {
            assert_eq!(
                s.printable(),
                d.printable(),
                "artifact text differs at des_threads={threads}"
            );
            assert_eq!(
                s.csv, d.csv,
                "artifact csv differs at des_threads={threads}"
            );
        }
        // The cached replay serves the same bytes without re-running.
        let misses = cache.misses();
        let again = cache.run_all(&des_specs);
        assert_eq!(cache.misses(), misses, "warm rerun must not re-simulate");
        for (f, a) in first.iter().zip(&again) {
            assert_eq!(
                serde_json::to_string(&f.report).unwrap(),
                serde_json::to_string(&a.report).unwrap(),
                "cached replay differs at des_threads={threads}"
            );
            assert_eq!(f.metrics, a.metrics);
        }
    }
}

#[test]
fn des_threads_match_serial_under_faults() {
    let faults = FaultSpec::parse("all").expect("the composite fault plane parses");
    let specs: Vec<ExperimentSpec> = specs_under_test()
        .into_iter()
        .map(|s| s.with_faults(faults))
        .collect();
    let serial = run_experiments(&specs);
    assert!(
        serial.iter().any(|r| r.report.summary.dropped_records > 0),
        "the fault plane must actually drop records for this test to bite"
    );
    for threads in [2u16, 4] {
        let des = run_experiments(&with_des(&specs, threads));
        assert_equivalent(&serial, &des, &format!("faulted des_threads={threads}"));
    }
}

#[test]
fn des_threads_match_serial_under_sharded_bases() {
    let backend = Backend::Native.with_shards(4);
    let specs: Vec<ExperimentSpec> = specs_under_test()
        .into_iter()
        .map(|s| s.with_backend(backend))
        .collect();
    let serial = run_experiments(&specs);
    for threads in [4u16, 8] {
        let des = run_experiments(&with_des(&specs, threads));
        assert_equivalent(&serial, &des, &format!("sharded des_threads={threads}"));
    }
}

#[test]
fn spec_labels_carry_the_des_suffix_only_when_parallel() {
    let spec = ExperimentSpec::new(Os::Linux, Workload::Idle, SimDuration::from_secs(2), 11);
    assert_eq!(timerstudy::spec_label(&spec), "Linux Idle 2s seed11");
    assert_eq!(
        timerstudy::spec_label(&spec.with_des_threads(8)),
        "Linux Idle 2s seed11 des=8"
    );
}
