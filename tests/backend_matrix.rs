//! Figure-level cross-backend oracle: forcing every simulated subsystem
//! onto any of the four timer-queue structures — flat or split across
//! per-CPU sharded bases — must leave each rendered table and figure —
//! and its CSV payload — byte-identical to the native run's. This is the
//! end-to-end half of the equivalence matrix; the structure-level halves
//! are `crates/wheel/tests/equivalence.rs` and
//! `crates/wheel/tests/sharding_equivalence.rs`.
//!
//! Sim metrics are deliberately *not* asserted identical: the backends
//! agree on every observable the figures are built from, but their
//! internal-churn counter (`wheel_cascades_total`) is backend-specific.

use simtime::SimDuration;
use telemetry::SimCounter;
use timerstudy::figures::reproduce_all_backend_with_results;
use timerstudy::Backend;

const SECS: u64 = 12;
const SEED: u64 = 7;

#[test]
fn all_backends_render_byte_identical_figures() {
    let duration = SimDuration::from_secs(SECS);
    let (native_results, native) =
        reproduce_all_backend_with_results(duration, SEED, Backend::Native);
    let native_counter =
        |c: SimCounter| -> u64 { native_results.iter().map(|r| r.metrics.counter(c)).sum() };
    assert!(
        native_counter(SimCounter::WheelSchedules) > 0,
        "the wheel counters must be live for the matrix to mean anything"
    );

    for backend in Backend::FORCED.into_iter().chain(Backend::SHARDED_MATRIX) {
        let (results, artifacts) = reproduce_all_backend_with_results(duration, SEED, backend);
        assert_eq!(
            native.len(),
            artifacts.len(),
            "backend {} produced a different artifact set",
            backend.label()
        );
        for (n, a) in native.iter().zip(&artifacts) {
            assert_eq!(
                n.title,
                a.title,
                "backend {} artifact order",
                backend.label()
            );
            assert_eq!(
                n.printable(),
                a.printable(),
                "backend {} diverged on '{}'",
                backend.label(),
                n.title
            );
            assert_eq!(
                n.csv,
                a.csv,
                "backend {} CSV diverged on '{}'",
                backend.label(),
                n.title
            );
        }

        // The externally-observable timer traffic is identical; only the
        // structure-internal churn counter may differ.
        for c in [
            SimCounter::WheelSchedules,
            SimCounter::WheelCancels,
            SimCounter::WheelExpirations,
        ] {
            let forced: u64 = results.iter().map(|r| r.metrics.counter(c)).sum();
            assert_eq!(
                native_counter(c),
                forced,
                "backend {} changed {:?}",
                backend.label(),
                c
            );
        }
    }
}

#[test]
fn forced_backend_results_carry_backend_in_spec() {
    let duration = SimDuration::from_secs(2);
    let (results, _) = reproduce_all_backend_with_results(duration, SEED, Backend::SortedList);
    assert!(!results.is_empty());
    for r in &results {
        assert_eq!(r.spec.backend, Backend::SortedList);
        assert!(
            timerstudy::spec_label(&r.spec).ends_with("backend=sortedlist"),
            "label must name the forced backend: {}",
            timerstudy::spec_label(&r.spec)
        );
    }
}

#[test]
fn sharded_backend_results_carry_shard_count_in_spec() {
    let duration = SimDuration::from_secs(2);
    let backend = Backend::Hashed.with_shards(4);
    let (results, _) = reproduce_all_backend_with_results(duration, SEED, backend);
    assert!(!results.is_empty());
    for r in &results {
        assert_eq!(r.spec.backend, backend);
        assert_eq!(r.spec.backend.shards(), 4);
        assert!(
            timerstudy::spec_label(&r.spec).ends_with("backend=sharded:4:hashed"),
            "label must name the sharded backend and base count: {}",
            timerstudy::spec_label(&r.spec)
        );
    }
}
