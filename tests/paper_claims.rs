//! The paper's qualitative claims, asserted against the reproduction.
//!
//! Absolute counts cannot match (our substrate is a simulator, not the
//! authors' testbed); every test here pins a *shape*: an ordering, a
//! dominance relation, a crossover, or the presence of a named value.

use simtime::SimDuration;
use timerstudy::experiment::run_table_workloads;
use timerstudy::{run_experiment, ExperimentSpec, Os, Workload};

const RUN: SimDuration = SimDuration::from_secs(180);

fn has_value(rows: &[analysis::values::ValueRow], seconds: f64) -> bool {
    rows.iter().any(|r| (r.seconds - seconds).abs() < 5e-4)
}

#[test]
fn vista_expires_linux_cancels() {
    // §4: "on Vista timers more often expire, whereas on Linux more
    // timers are canceled".
    let linux = run_table_workloads(Os::Linux, RUN, 3);
    let vista = run_table_workloads(Os::Vista, RUN, 3);
    let (mut l_cancel_heavy, mut v_expire_heavy) = (0, 0);
    for r in &linux {
        if r.report.summary.canceled > r.report.summary.expired {
            l_cancel_heavy += 1;
        }
    }
    for r in &vista {
        if r.report.summary.expired > r.report.summary.canceled {
            v_expire_heavy += 1;
        }
    }
    assert!(
        l_cancel_heavy >= 3,
        "Linux: {l_cancel_heavy}/4 cancel-heavy"
    );
    assert_eq!(v_expire_heavy, 4, "Vista: all workloads expire-heavy");
}

#[test]
fn workload_intensity_ordering_matches_table1() {
    // Table 1: Firefox >> Skype > Idle in accesses; GUI applications are
    // responsible for very large numbers of timer calls.
    let linux = run_table_workloads(Os::Linux, RUN, 3);
    let by = |w: Workload| {
        linux
            .iter()
            .find(|r| r.spec.workload == w)
            .unwrap()
            .report
            .summary
            .accesses
    };
    assert!(by(Workload::Firefox) > 5 * by(Workload::Skype));
    assert!(by(Workload::Skype) > by(Workload::Idle));
}

#[test]
fn linux_webserver_kernel_dominates_but_vista_webserver_does_not_grow() {
    // Table 1 vs Table 2 webserver columns + the §1 TCP-wheel story.
    let lweb = run_experiment(ExperimentSpec::new(Os::Linux, Workload::Webserver, RUN, 3));
    assert!(lweb.report.summary.kernel > lweb.report.summary.user_space);
    let vidle = run_experiment(ExperimentSpec::new(Os::Vista, Workload::Idle, RUN, 3));
    let vweb = run_experiment(ExperimentSpec::new(Os::Vista, Workload::Webserver, RUN, 3));
    let ratio = vweb.report.summary.kernel as f64 / vidle.report.summary.kernel as f64;
    assert!(
        ratio < 2.0,
        "Vista webserver kernel activity must stay near idle (ratio {ratio:.2})"
    );
}

#[test]
fn linux_values_are_jiffy_quantised_vista_values_are_not() {
    // §4.3: "Linux rounds timeouts to the nearest jiffy. Therefore, we do
    // not see any timers of less than one jiffy (4ms) in the Linux
    // traces... not seen in the Vista traces."
    let linux = run_experiment(ExperimentSpec::new(Os::Linux, Workload::Firefox, RUN, 3));
    for p in &linux.report.scatter {
        assert!(
            p.seconds >= 0.0039,
            "no sub-jiffy armed timers on Linux, got {}",
            p.seconds
        );
    }
    let vista = run_experiment(ExperimentSpec::new(Os::Vista, Workload::Firefox, RUN, 3));
    assert!(
        vista.report.scatter.iter().any(|p| p.seconds < 0.002),
        "Vista carries sub-millisecond requested values"
    );
}

#[test]
fn skype_sets_both_4999_and_half_second() {
    // §4.2: Skype "is dominated by constant timeouts of 0, 0.4999 and
    // 0.5" — the histogram must keep 0.4999 and 0.5 distinct.
    let r = run_experiment(ExperimentSpec::new(Os::Linux, Workload::Skype, RUN, 3));
    let rows = &r.report.values_user;
    assert!(has_value(rows, 0.0), "zero-timeout polls missing");
    assert!(has_value(rows, 0.4999), "0.4999 missing: {rows:?}");
    assert!(has_value(rows, 0.5), "0.5 missing");
}

#[test]
fn table3_constants_appear_in_webserver_values() {
    // Table 3's kernel constants emerge from the mechanisms: the 40 ms
    // delayed ACK, the 3 s SYN retransmit, 15 s Apache poll, 30 s IDE,
    // 7200 s keepalive.
    let r = run_experiment(ExperimentSpec::new(Os::Linux, Workload::Webserver, RUN, 3));
    let rows = &r.report.values_filtered;
    for v in [0.04, 3.0, 15.0, 30.0, 7200.0] {
        assert!(has_value(rows, v), "expected value {v} in {rows:?}");
    }
}

#[test]
fn tcp_rto_floor_appears_in_skype_trace() {
    // Table 3: "0.204 TCP retransmission timeout ... determined by online
    // adaptation" — with steady sub-floor RTTs the adaptive RTO sits at
    // its 204 ms floor.
    let r = run_experiment(ExperimentSpec::new(Os::Linux, Workload::Skype, RUN, 3));
    assert!(
        has_value(&r.report.values_filtered, 0.204),
        "0.204 missing from {:?}",
        r.report.values_filtered
    );
}

#[test]
fn arp_five_second_vertical_array() {
    // §4.3: the constant 5 s ARP timer cancelled at random intervals
    // shows as a vertical array at 5 s spanning a wide percentage range.
    let r = run_experiment(ExperimentSpec::new(Os::Linux, Workload::Webserver, RUN, 3));
    let at5: Vec<f64> = r
        .report
        .scatter
        .iter()
        .filter(|p| (p.seconds - 5.0).abs() / 5.0 < 0.06)
        .map(|p| p.percent)
        .collect();
    assert!(at5.len() > 3, "need a populated 5 s column: {at5:?}");
    let min = at5.iter().copied().fold(f64::INFINITY, f64::min);
    let max = at5.iter().copied().fold(0.0f64, f64::max);
    assert!(
        max - min > 50.0,
        "5 s cancellations must span a wide range: {min}..{max}"
    );
}

#[test]
fn outlook_bursts_reach_thousands_per_second() {
    // §2.2.1 / Figure 1: ~70 timers/s idle, bursts to ~7000/s.
    let r = run_experiment(ExperimentSpec::new(
        Os::Vista,
        Workload::Outlook,
        timerstudy::FIG1_DURATION,
        3,
    ));
    let outlook = r.report.rate_series.get("Outlook").expect("series");
    let peak = outlook.iter().copied().max().unwrap_or(0);
    assert!(peak > 2_000, "burst peak = {peak}");
    let quiet = outlook.iter().filter(|&&c| c < 200).count();
    assert!(quiet > outlook.len() / 2, "mostly idle between bursts");
    // And the kernel sets on the order of a thousand timers per second.
    let kernel = r.report.rate_series.get("Kernel").expect("series");
    let mean = kernel.iter().map(|&c| c as f64).sum::<f64>() / kernel.len() as f64;
    assert!((300.0..3_000.0).contains(&mean), "kernel mean = {mean}");
}

#[test]
fn firefox_cancellations_spread_uniformly() {
    // §4.3: Firefox cancellations are "equally distributed between 0% and
    // 100%".
    let r = run_experiment(ExperimentSpec::new(Os::Linux, Workload::Firefox, RUN, 3));
    let cancels: Vec<(f64, u64)> = r
        .report
        .scatter
        .iter()
        .filter(|p| !p.mostly_expired && p.percent < 100.0)
        .map(|p| (p.percent, p.count))
        .collect();
    let total: u64 = cancels.iter().map(|&(_, c)| c).sum();
    let low: u64 = cancels
        .iter()
        .filter(|&&(p, _)| p < 50.0)
        .map(|&(_, c)| c)
        .sum();
    let frac = low as f64 / total.max(1) as f64;
    assert!(
        (0.3..0.7).contains(&frac),
        "cancellations should spread evenly, below-50% fraction = {frac}"
    );
}

#[test]
fn idle_pattern_mix_is_periodic_heavy_webserver_uses_watchdogs() {
    // Figure 2: "Apache uses watchdogs to timeout connections, whereas
    // the Idle workload employs almost none, but is instead dominated by
    // periodic background tasks."
    let linux = run_table_workloads(Os::Linux, RUN, 3);
    let mix_of = |w: Workload| {
        &linux
            .iter()
            .find(|r| r.spec.workload == w)
            .unwrap()
            .report
            .pattern_mix
    };
    use analysis::PatternClass::{Periodic, Watchdog};
    let idle = mix_of(Workload::Idle);
    let web = mix_of(Workload::Webserver);
    assert!(
        idle.percent(Periodic) > web.percent(Periodic),
        "idle periodic {:.1}% vs web {:.1}%",
        idle.percent(Periodic),
        web.percent(Periodic)
    );
    assert!(
        web.percent(Watchdog) > idle.percent(Watchdog),
        "web watchdog {:.1}% vs idle {:.1}%",
        web.percent(Watchdog),
        idle.percent(Watchdog)
    );
}

#[test]
fn vista_traces_show_the_deferred_pattern() {
    // 4.1.1: "Vista traces ... show a further distinctive pattern"
    // (deferred: repeatedly pushed out, then expires — registry lazy
    // close). The Linux taxonomy does not contain it.
    let vista = run_experiment(ExperimentSpec::new(Os::Vista, Workload::Idle, RUN, 3));
    assert!(
        vista
            .report
            .pattern_mix
            .percent(analysis::PatternClass::Deferred)
            > 0.0,
        "mix = {:?}",
        vista.report.pattern_mix
    );
    let linux = run_experiment(ExperimentSpec::new(Os::Linux, Workload::Idle, RUN, 3));
    assert_eq!(
        linux
            .report
            .pattern_mix
            .percent(analysis::PatternClass::Deferred),
        0.0
    );
}

#[test]
fn firefox_and_skype_have_high_unclassified_share() {
    // §4.1.1: "The high number of unclassified timers in the Skype and
    // Firefox workloads correspond to a large volume of very short
    // timers."
    let linux = run_table_workloads(Os::Linux, RUN, 3);
    for w in [Workload::Firefox, Workload::Skype] {
        let mix = &linux
            .iter()
            .find(|r| r.spec.workload == w)
            .unwrap()
            .report
            .pattern_mix;
        assert!(
            mix.percent(analysis::PatternClass::Other) > 30.0,
            "{w:?} other = {:.1}%",
            mix.percent(analysis::PatternClass::Other)
        );
    }
}
