//! The million-connection Apache run, scaled for CI.
//!
//! The `ApacheScale` workload holds ~10⁶ concurrent connections — one
//! keepalive watchdog plus one TCP retransmit timer each — on the
//! sharded per-CPU timer bases. CI runs a scaled-down population that
//! still crosses the 2¹⁶ boundary where a port-only connection identity
//! would collide; set `MILLION_CONN_FULL=1` to run the full million
//! (about 500 simulated seconds).
//!
//! What the smoke pins down, at either scale:
//! - the run builds exactly its target population and drains it — zero
//!   leaked timers, expressed as the conservation identity
//!   `schedules == cancels + expirations + still-pending`;
//! - activity waves migrate live watchdogs between bases (the migration
//!   counter is hot) while keeping every connection alive (no watchdog
//!   closes, no retransmit giveups);
//! - the per-CPU bases stay balanced (the imbalance high-watermark is a
//!   small fraction of the per-base population);
//! - the streaming analysis path keeps its bounded-memory guarantee at
//!   this scale (`analysis_resident_events_high_watermark` never exceeds
//!   one chunk).

use simtime::SimDuration;
use telemetry::{SimCounter, SimGauge};
use timerstudy::experiment::ANALYSIS_CHUNK_EVENTS;
use timerstudy::{Backend, ExperimentSpec, Os};
use trace::NullSink;
use workloads::linux::apache::connection_target;
use workloads::Workload;

const SEED: u64 = 7;

/// CI population: 40 s × 2000 conn/s = 80 000 connections, past the
/// 16-bit boundary. The full run is 500 s → 1 000 000.
fn smoke_duration() -> SimDuration {
    if std::env::var("MILLION_CONN_FULL").is_ok_and(|v| v == "1") {
        SimDuration::from_secs(500)
    } else {
        SimDuration::from_secs(40)
    }
}

#[test]
fn mass_population_builds_migrates_and_drains_clean() {
    let duration = smoke_duration();
    let target = connection_target(duration);
    assert!(
        target > u64::from(u16::MAX),
        "the smoke must cross the 2^16 connection-identity boundary"
    );

    let backend = Backend::Native.with_shards(4);
    let (kernel, metrics) = telemetry::sim::scoped(|| {
        workloads::run_linux_backend(
            Workload::ApacheScale,
            SEED,
            duration,
            Box::new(NullSink),
            netsim::NetFault::none(),
            backend,
        )
    });

    // The population reached its target and every connection survived
    // to the close wave: nothing idled past its watchdog, nothing
    // exhausted its retransmit budget, and the drain closed everything.
    let mass = kernel.mass_table();
    assert_eq!(mass.opened_total(), target);
    assert_eq!(mass.watchdog_closes(), 0, "a wave gap outlived a watchdog");
    assert_eq!(mass.rto_giveups(), 0, "a connection exhausted its RTO");
    assert_eq!(mass.open_count(), 0, "the close wave leaked connections");

    // Zero leaked timers, as conservation across all bases: every
    // schedule is matched by a cancel, an expiration, or a timer still
    // legitimately pending (background kernel/LAN population only —
    // the mass table's own timers are all cancelled by the drain).
    let schedules = metrics.counter(SimCounter::WheelSchedules);
    let cancels = metrics.counter(SimCounter::WheelCancels);
    let expirations = metrics.counter(SimCounter::WheelExpirations);
    let pending = kernel.timer_base().pending_count() as u64;
    assert_eq!(
        schedules,
        cancels + expirations + pending,
        "timer leak: {schedules} schedules vs {cancels} cancels + \
         {expirations} expirations + {pending} pending"
    );
    assert!(
        schedules > 2 * target,
        "the mass population's timer traffic must dominate the run"
    );

    // Waves re-arm from rotated CPUs: cross-base migration is hot.
    let migrations = metrics.counter(SimCounter::WheelBaseMigrations);
    assert!(
        migrations > target,
        "expected at least one migration per connection, got {migrations}"
    );

    // Balanced bases: the worst observed spread between the fullest and
    // emptiest base stays a small fraction of the per-base population.
    let imbalance = metrics.gauge(SimGauge::WheelBaseImbalanceMax);
    let per_base = metrics.gauge(SimGauge::WheelPendingHigh) / u64::from(backend.shards());
    assert!(
        imbalance < per_base / 10,
        "bases unbalanced: spread {imbalance} vs ~{per_base} timers per base"
    );
}

/// Inner parallel-DES width for the bounded-memory smoke: 0 (the serial
/// pipeline) by default, or `MILLION_CONN_DES_THREADS=N` to push the
/// mass population through the conservative parallel engine — CI runs
/// this once at N=4. The chunk bound must hold either way: the fan-out
/// sink gauges exactly the same flush points the serial sink does.
fn smoke_des_threads() -> u16 {
    std::env::var("MILLION_CONN_DES_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[test]
fn streaming_analysis_stays_bounded_at_scale() {
    // The full experiment pipeline (workload → streaming analyzer →
    // report) at a population past 2¹⁶, on sharded bases: the resident
    // buffer must stay chunk-bounded no matter how many events the mass
    // population emits.
    let duration = SimDuration::from_secs(40);
    let spec = ExperimentSpec::new(Os::Linux, Workload::ApacheScale, duration, SEED)
        .with_shards(4)
        .with_des_threads(smoke_des_threads());
    let result = timerstudy::experiment::run_experiment(spec);
    let peak = result.metrics.gauge(SimGauge::AnalysisResidentEventsHigh);
    assert!(peak > 0, "the analyzer saw no events");
    assert!(
        peak <= ANALYSIS_CHUNK_EVENTS as u64,
        "streaming analysis exceeded its chunk bound: {peak}"
    );
    assert!(result.records > 0);
}
