//! Golden *shape* tests for the figure drivers.
//!
//! The committed `artifacts/` directory holds a full-length reference
//! run. Exact counts depend on the trace duration, so these tests pin
//! the parts of each artifact that must not drift no matter how long the
//! simulation runs: titles, table row labels and column headers, section
//! headers, scatter sub-plot labels, and which artifacts carry CSV data.

use std::collections::BTreeMap;
use std::path::Path;

use simtime::SimDuration;
use timerstudy::figures::{reproduce_all, Artifact};

/// Indices (in paper order) whose artifacts carry CSV data.
const CSV_INDICES: [usize; 7] = [0, 4, 5, 10, 11, 12, 13];

/// Loads the committed reference artifacts, keyed by paper-order index.
fn golden_artifacts() -> BTreeMap<usize, (String, String)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("artifacts");
    let mut golden = BTreeMap::new();
    for entry in std::fs::read_dir(&dir).expect("artifacts/ directory present") {
        let path = entry.expect("readable artifacts entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("txt") {
            continue;
        }
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let index: usize = name
            .split('_')
            .next()
            .and_then(|i| i.parse().ok())
            .expect("artifact file names start with a two-digit index");
        let text = std::fs::read_to_string(&path).expect("readable artifact");
        golden.insert(index, (name, text));
    }
    golden
}

fn generated_artifacts() -> Vec<Artifact> {
    // Short traces: the shape checks below are duration-independent.
    reproduce_all(SimDuration::from_secs(20), 7)
}

/// The first line, e.g. `=== Table 1: Linux trace summary ===`.
fn title_line(text: &str) -> &str {
    text.lines().next().unwrap_or("")
}

/// Leading alphabetic row labels of a rendered table (skips the title,
/// column header, and rule lines).
fn row_labels(text: &str) -> Vec<String> {
    text.lines()
        .filter(|l| {
            l.chars().next().is_some_and(|c| c.is_ascii_alphabetic())
                && !l.starts_with("===")
                && !l.starts_with("group")
        })
        .map(|l| l.split_whitespace().next().unwrap().to_owned())
        .collect()
}

/// `-- Idle ... --` style section headers, truncated to the workload
/// name (coverage percentages depend on duration).
fn section_headers(text: &str) -> Vec<String> {
    text.lines()
        .filter(|l| l.starts_with("-- "))
        .map(|l| l.split_whitespace().take(2).collect::<Vec<_>>().join(" "))
        .collect()
}

#[test]
fn artifact_set_matches_the_committed_run() {
    let golden = golden_artifacts();
    let generated = generated_artifacts();
    assert_eq!(
        generated.len(),
        golden.len(),
        "reproduce_all must emit one artifact per committed reference file"
    );
    for (index, artifact) in generated.iter().enumerate() {
        let (name, text) = golden.get(&index).expect("reference artifact exists");
        assert_eq!(
            title_line(&artifact.printable()),
            title_line(text),
            "title drifted for artifacts/{name}.txt"
        );
    }
}

#[test]
fn tables_keep_their_rows_and_columns() {
    let golden = golden_artifacts();
    let generated = generated_artifacts();
    // Tables 1 and 2 (indices 1, 2): same row labels, same workloads.
    for index in [1usize, 2] {
        let (name, text) = &golden[&index];
        let ours = &generated[index].text;
        assert_eq!(
            row_labels(ours),
            row_labels(text),
            "summary rows drifted for artifacts/{name}.txt"
        );
        let golden_header: Vec<&str> = text.lines().nth(1).unwrap().split_whitespace().collect();
        let our_header: Vec<&str> = ours.lines().next().unwrap().split_whitespace().collect();
        assert_eq!(
            our_header, golden_header,
            "workload columns drifted for artifacts/{name}.txt"
        );
    }
    // Figure 2 (index 3): pattern rows are fixed by the classifier.
    let (name, text) = &golden[&3];
    assert_eq!(
        row_labels(&generated[3].text),
        row_labels(text),
        "pattern rows drifted for artifacts/{name}.txt"
    );
    // Table 3 (index 9): the header names its columns.
    let (name, text) = &golden[&9];
    let golden_header: Vec<&str> = text.lines().nth(1).unwrap().split_whitespace().collect();
    let our_header: Vec<&str> = generated[9]
        .text
        .lines()
        .next()
        .unwrap()
        .split_whitespace()
        .collect();
    assert_eq!(
        our_header, golden_header,
        "provenance columns drifted for artifacts/{name}.txt"
    );
}

#[test]
fn value_charts_keep_their_workload_sections() {
    let golden = golden_artifacts();
    let generated = generated_artifacts();
    // Figures 3, 5, 6, 7 (indices 4, 6, 7, 8): one section per workload.
    for index in [4usize, 6, 7, 8] {
        let (name, text) = &golden[&index];
        assert_eq!(
            section_headers(&generated[index].text),
            section_headers(text),
            "workload sections drifted for artifacts/{name}.txt"
        );
    }
}

#[test]
fn scatter_plots_keep_both_os_panels() {
    let golden = golden_artifacts();
    let generated = generated_artifacts();
    // Figures 8-11 (indices 10-13): a Linux panel then a Vista panel.
    for index in 10usize..=13 {
        let (name, text) = &golden[&index];
        let ours = &generated[index].text;
        for panel in ["(a) Linux", "(b) Vista"] {
            let golden_label = text
                .lines()
                .find(|l| l.starts_with(panel))
                .unwrap_or_else(|| panic!("artifacts/{name}.txt lost its '{panel}' panel"));
            assert!(
                ours.lines().any(|l| l == golden_label),
                "generated figure {index} lost panel '{golden_label}'"
            );
        }
    }
}

#[test]
fn csv_presence_matches_the_committed_run() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("artifacts");
    let generated = generated_artifacts();
    for (index, artifact) in generated.iter().enumerate() {
        let expect_csv = CSV_INDICES.contains(&index);
        assert_eq!(
            artifact.csv.is_some(),
            expect_csv,
            "csv presence drifted for artifact {index} ({})",
            artifact.title
        );
        // The committed run agrees with the code.
        let on_disk = std::fs::read_dir(&dir)
            .expect("artifacts/ directory present")
            .filter_map(|e| e.ok())
            .any(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.starts_with(&format!("{index:02}_")) && name.ends_with(".csv")
            });
        assert_eq!(
            on_disk, expect_csv,
            "committed csv files disagree for artifact {index}"
        );
    }
    // Figure 1's CSV keeps its schema.
    assert!(
        generated[0]
            .csv
            .as_deref()
            .is_some_and(|c| c.starts_with("second,group,sets\n")),
        "figure 1 csv header drifted"
    );
}
