//! Differential oracle: the streaming analysis pipeline (bounded chunk
//! buffer, k-way merged readout) must emit byte-identical reports and
//! artifacts to the collect-everything path it replaced — across serial,
//! parallel and cached execution — while holding peak resident events to
//! a constant independent of trace length.

use simtime::SimDuration;
use timerstudy::cache::ExperimentCache;
use timerstudy::experiment::{run_experiments, run_experiments_collected, table_specs};
use timerstudy::figures::{assemble, paper_specs};
use timerstudy::parallel::run_experiments_parallel_with;
use timerstudy::{ExperimentResult, Os, ANALYSIS_CHUNK_EVENTS};

const SECS: u64 = 12;
const SEED: u64 = 7;

fn report_json(r: &ExperimentResult) -> String {
    serde_json::to_string(&r.report).unwrap()
}

fn peak_resident(r: &ExperimentResult) -> u64 {
    r.metrics
        .gauge(telemetry::SimGauge::AnalysisResidentEventsHigh)
}

#[test]
fn streaming_and_collected_agree_byte_for_byte_across_all_paths() {
    let specs = paper_specs(SimDuration::from_secs(SECS), SEED);

    let streaming = run_experiments(&specs);
    let collected = run_experiments_collected(&specs);
    let parallel = run_experiments_parallel_with(&specs, 4);
    let cached = ExperimentCache::new().run_all(&specs);

    for (((s, c), p), k) in streaming.iter().zip(&collected).zip(&parallel).zip(&cached) {
        assert_eq!(s.spec, c.spec);
        let want = report_json(s);
        assert_eq!(want, report_json(c), "collected diverged for {:?}", s.spec);
        assert_eq!(want, report_json(p), "parallel diverged for {:?}", s.spec);
        assert_eq!(want, report_json(k), "cached diverged for {:?}", s.spec);
        assert_eq!(s.records, c.records);
        assert_eq!(s.wakeups, c.wakeups);
        assert_eq!(s.busy, c.busy);
    }

    // The rendered figures/tables — what `repro_all` actually prints —
    // are byte-identical too.
    let a_streaming = assemble(&streaming);
    let a_collected = assemble(&collected);
    let a_parallel = assemble(&parallel);
    let a_cached = assemble(&cached);
    for (((s, c), p), k) in a_streaming
        .iter()
        .zip(&a_collected)
        .zip(&a_parallel)
        .zip(&a_cached)
    {
        assert_eq!(s.printable(), c.printable(), "collected artifact differs");
        assert_eq!(s.printable(), p.printable(), "parallel artifact differs");
        assert_eq!(s.printable(), k.printable(), "cached artifact differs");
        assert_eq!(s.csv, c.csv);
        assert_eq!(s.csv, p.csv);
        assert_eq!(s.csv, k.csv);
    }
}

#[test]
fn streaming_memory_bound_is_constant_in_trace_length() {
    let short = SimDuration::from_secs(10);
    let long = SimDuration::from_secs(20);
    let chunk = ANALYSIS_CHUNK_EVENTS as u64;

    let streaming_short = run_experiments(&table_specs(Os::Linux, short, SEED));
    let streaming_long = run_experiments(&table_specs(Os::Linux, long, SEED));
    let collected_short = run_experiments_collected(&table_specs(Os::Linux, short, SEED));

    for (s, c) in streaming_short.iter().zip(&collected_short) {
        // Streaming never buffers more than one chunk; the oracle holds
        // the entire trace resident at once.
        assert!(
            peak_resident(s) <= chunk,
            "streaming resident {} exceeds chunk {chunk}",
            peak_resident(s)
        );
        assert_eq!(
            peak_resident(c),
            c.records,
            "collected path must hold the whole trace"
        );
        if s.records > chunk {
            assert_eq!(peak_resident(s), chunk, "full chunks flush at the bound");
            assert!(peak_resident(c) > peak_resident(s));
        }
    }

    // Doubling the trace leaves the streaming bound unchanged even as
    // the trace itself grows.
    let mut saw_growth = false;
    for (s, l) in streaming_short.iter().zip(&streaming_long) {
        assert!(peak_resident(l) <= chunk);
        if l.records > s.records && s.records > chunk {
            assert_eq!(peak_resident(s), peak_resident(l));
            saw_growth = true;
        }
    }
    assert!(
        saw_growth,
        "expected at least one workload to exceed one chunk and grow with duration"
    );
}
