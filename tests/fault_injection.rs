//! Fault-matrix integration tests: experiments under an *active* fault
//! plane stay deterministic, account for every lost record exactly, and
//! surface the damage in the rendered tables.
//!
//! The CI fault-matrix job runs this suite repeatedly with `FAULT_MODE`
//! ∈ {drops, net-burst, clock-jitter} × `FAULT_SEED` ∈ {1, 2, 3}; without
//! the env vars it defaults to 1 % ring drops with seed 1, so a plain
//! `cargo test` still crosses the injected path.

use simtime::SimDuration;
use timerstudy::experiment::{run_experiments, table_specs};
use timerstudy::{render, ExperimentSpec, FaultSpec, Os, Workload};

const SECS: u64 = 20;

/// The fault plane under test, from the CI matrix env (or the 1 % drop
/// default).
fn matrix_faults() -> FaultSpec {
    let mode = std::env::var("FAULT_MODE").unwrap_or_else(|_| "drops".to_owned());
    let seed: u64 = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    FaultSpec::parse(&mode)
        .unwrap_or_else(|e| panic!("bad FAULT_MODE {mode:?}: {e}"))
        .with_seed(seed)
}

fn faulted_specs(faults: FaultSpec) -> Vec<ExperimentSpec> {
    let duration = SimDuration::from_secs(SECS);
    let mut specs = table_specs(Os::Linux, duration, 9);
    specs.extend(table_specs(Os::Vista, duration, 9));
    specs.into_iter().map(|s| s.with_faults(faults)).collect()
}

#[test]
fn one_percent_drops_are_accounted_exactly() {
    let faults = FaultSpec::ring_drops().with_seed(3);
    let results = run_experiments(&faulted_specs(faults));
    for r in &results {
        let s = &r.report.summary;
        assert!(
            s.dropped_records > 0,
            "{:?}/{:?}: 1% drops over {} records lost nothing",
            r.spec.os,
            r.spec.workload,
            r.records
        );
        // Exact conservation: what the kernel logged either reached the
        // analyzer or is in the drop counter — nothing leaks.
        assert_eq!(
            s.accesses + s.dropped_records,
            r.records,
            "{:?}/{:?}: delivered + dropped != logged",
            r.spec.os,
            r.spec.workload
        );
        // Lost Sets leave end events unmatched; the reconstructor must
        // log orphans rather than fabricate episodes.
        assert!(
            s.set >= s.expired.saturating_sub(s.dropped_records),
            "expiries cannot outnumber surviving sets plus drops"
        );
    }
}

#[test]
fn summary_tables_surface_nonzero_drop_counts() {
    let faults = FaultSpec::ring_drops().with_seed(3);
    let results = run_experiments(&faulted_specs(faults));
    let (linux, vista) = results.split_at(4);
    for (os, half) in [("Linux", linux), ("Vista", vista)] {
        let table = render::summary_table(half);
        assert!(
            table.contains("Dropped records"),
            "{os} table missing drop accounting:\n{table}"
        );
        assert!(
            table.contains("Orphan ends"),
            "{os} table missing orphan accounting:\n{table}"
        );
        for r in half {
            assert!(
                table.contains(&r.report.summary.dropped_records.to_string()),
                "{os} table lost the exact drop count {} for {:?}:\n{table}",
                r.report.summary.dropped_records,
                r.spec.workload
            );
        }
    }
}

#[test]
fn matrix_mode_is_deterministic_and_consistent() {
    let faults = matrix_faults();
    let first = run_experiments(&faulted_specs(faults));
    let second = run_experiments(&faulted_specs(faults));
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            serde_json::to_string(&a.report).unwrap(),
            serde_json::to_string(&b.report).unwrap(),
            "faulted runs must be exactly reproducible ({:?}/{:?}, faults {})",
            a.spec.os,
            a.spec.workload,
            faults.label()
        );
        // The analysis keeps its internal decomposition on every degraded
        // trace.
        let s = &a.report.summary;
        assert_eq!(s.accesses, s.user_space + s.kernel);
        assert_eq!(s.accesses + s.dropped_records, a.records);
        assert!(s.set >= 1, "a degraded trace still carries sets");
    }
}

#[test]
fn matrix_mode_differs_from_clean_when_it_should() {
    let faults = matrix_faults();
    let faulted = run_experiments(&faulted_specs(faults));
    let clean = run_experiments(
        &faulted_specs(faults)
            .into_iter()
            .map(|s| s.with_faults(FaultSpec::none()))
            .collect::<Vec<_>>(),
    );
    // At least one workload's report must actually feel the fault plane
    // (drops/jitter touch every trace; a net burst only the networked
    // workloads, but Skype is always among them).
    let touched = faulted
        .iter()
        .zip(&clean)
        .filter(|(f, c)| {
            serde_json::to_string(&f.report).unwrap() != serde_json::to_string(&c.report).unwrap()
        })
        .count();
    assert!(
        touched >= 1,
        "fault plane {} was a no-op across all workloads",
        faults.label()
    );
}

#[test]
fn clock_jitter_and_net_burst_never_panic_with_drops_combined() {
    // The full matrix corner: everything on at once, over a couple of
    // seeds, on the most network- and trace-intensive workloads.
    for seed in [1u64, 2, 3] {
        let faults = FaultSpec::parse("all").unwrap().with_seed(seed);
        let duration = SimDuration::from_secs(SECS);
        let specs = [
            ExperimentSpec::new(Os::Linux, Workload::Firefox, duration, 9).with_faults(faults),
            ExperimentSpec::new(Os::Linux, Workload::Skype, duration, 9).with_faults(faults),
            ExperimentSpec::new(Os::Vista, Workload::Webserver, duration, 9).with_faults(faults),
        ];
        for r in run_experiments(&specs) {
            let s = &r.report.summary;
            assert_eq!(s.accesses + s.dropped_records, r.records);
            assert!(s.dropped_records > 0, "combined faults must drop records");
        }
    }
}
